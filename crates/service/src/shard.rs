//! Sharding policy services by canonical instance key.
//!
//! A [`ShardRouter`] fronts `k` independent [`PolicyService`] shards.
//! Requests are canonicalized (`econcast_statespace::instance`) and
//! routed by **consistent hashing** of the canonical key over a ring
//! of virtual nodes: every canonical instance — and therefore every
//! permutation and tolerance-tier alias of it — always lands on the
//! same shard, so the per-shard LRU and grid caches stay hot and
//! **disjoint** (no entry is duplicated across shards, and growing the
//! shard count moves only ~1/k of the key space).
//!
//! ## Response invariance
//!
//! Routing must be invisible in the responses: each queued solve is an
//! independent, deterministic computation, and identical canonical
//! keys share a shard, so a sharded deployment returns **bit-identical
//! policies, throughputs, and certificates** to a single
//! `PolicyService` serving the same requests (pinned by
//! `tests/socket.rs`). Only the *tier label* may differ when a batch
//! is split across shards or TCP segment boundaries: a duplicate that
//! the single-service path answered as an in-batch alias of a `Solver`
//! job can arrive in a later sub-batch and replay from the LRU as
//! `Exact` — same bits either way.

use crate::grid::FamilyKey;
use crate::prewarm::{MixRecorder, PrewarmConfig};
use crate::request::{PolicyRequest, PolicyResponse, ServiceError};
use crate::service::{PolicyService, ServiceConfig};
use crate::stats::ServiceStats;
use econcast_statespace::{CanonicalInstance, InstanceKey};
use std::sync::Mutex;

/// Configuration for a sharded deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Number of policy-service shards (≥ 1).
    pub shards: usize,
    /// Virtual nodes per shard on the consistent-hash ring. More
    /// vnodes flatten the key-space split across shards; 64 keeps the
    /// imbalance within a few percent.
    pub vnodes: usize,
    /// Configuration applied to every shard's `PolicyService`.
    pub service: ServiceConfig,
    /// Prewarming knobs (used by [`ShardRouter::prewarm_once`] and the
    /// TCP server's background prewarmer).
    pub prewarm: PrewarmConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            vnodes: 64,
            service: ServiceConfig::default(),
            prewarm: PrewarmConfig::default(),
        }
    }
}

/// One shard: a policy service plus its observed request mix.
#[derive(Debug)]
struct ShardState {
    service: PolicyService,
    mixes: MixRecorder,
    /// Requests routed to this shard (including rejected ones).
    routed: u64,
}

/// Routes canonicalized requests across policy-service shards.
///
/// The router is `Sync`: shards live behind independent mutexes, so
/// connection handlers serving disjoint shard sets proceed in
/// parallel, while a single canonical key is always serialized through
/// its one home shard.
#[derive(Debug)]
pub struct ShardRouter {
    /// Sorted consistent-hash ring: `(point, shard)`.
    ring: Vec<(u64, u16)>,
    shards: Vec<Mutex<ShardState>>,
    prewarm: PrewarmConfig,
    /// Grid-coverable budget range of the shard services (`None` when
    /// the grid tier is disabled) — gates mix recording so the
    /// prewarmer never builds a grid no request could be served from.
    grid_range: Option<(f64, f64)>,
}

impl ShardRouter {
    /// Builds the ring and the shard services.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`, `shards > u16::MAX as usize`, or
    /// `vnodes == 0`.
    pub fn new(cfg: RouterConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.shards <= u16::MAX as usize, "shard ids are u16");
        assert!(cfg.vnodes >= 1, "need at least one vnode per shard");
        let mut ring: Vec<(u64, u16)> = (0..cfg.shards as u16)
            .flat_map(|s| {
                (0..cfg.vnodes as u64)
                    .map(move |v| (econcast_statespace::fnv1a_64([u64::from(s), v]), s))
            })
            .collect();
        ring.sort_unstable();
        let shards = (0..cfg.shards)
            .map(|_| {
                Mutex::new(ShardState {
                    service: PolicyService::new(cfg.service),
                    mixes: MixRecorder::new(),
                    routed: 0,
                })
            })
            .collect();
        ShardRouter {
            ring,
            shards,
            prewarm: cfg.prewarm,
            grid_range: cfg.service.grid.map(|g| (g.rho_min_w, g.rho_max_w)),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of a canonical instance key: the first ring
    /// point at or after the key's route hash (wrapping).
    pub fn shard_of_key(&self, key: &InstanceKey) -> u16 {
        let h = key.route_hash();
        let i = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[if i == self.ring.len() { 0 } else { i }].1
    }

    /// The home shard of a request, or `None` when the request fails
    /// validation (rejected requests are charged to shard 0).
    pub fn shard_of_request(&self, req: &PolicyRequest) -> Option<u16> {
        req.validate().ok()?;
        Some(self.shard_of_key(&canonicalize(req).key))
    }

    /// Serves a batch: requests scatter to their home shards (each
    /// sub-batch preserves request order), shards serve independently,
    /// and responses gather back in request order, each in its
    /// caller's node order.
    pub fn serve_batch(&self, reqs: &[PolicyRequest]) -> Vec<Result<PolicyResponse, ServiceError>> {
        let nshards = self.shards.len();
        // Route — canonicalize each request exactly once; ownership of
        // the canonicalization is handed to the home shard's probe
        // phase below, so nothing is sorted or cloned twice. Also note
        // grid-coverable homogeneous families for the prewarmer.
        let route_t0 = econcast_trace::armed_now();
        let mut canons: Vec<Option<CanonicalInstance>> = Vec::with_capacity(reqs.len());
        let mut sub_idx: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        let mut observed: Vec<Vec<FamilyKey>> = vec![Vec::new(); nshards];
        for (i, req) in reqs.iter().enumerate() {
            let shard = match req.validate() {
                // Rejected requests are charged to shard 0.
                Err(_) => {
                    canons.push(None);
                    0
                }
                Ok(()) => {
                    let canon = canonicalize(req);
                    let s = self.shard_of_key(&canon.key);
                    if canon.homogeneous
                        && self
                            .grid_range
                            .is_some_and(|(lo, hi)| (lo..=hi).contains(&canon.sorted_budgets[0]))
                    {
                        observed[s as usize].push(FamilyKey::new(
                            canon.sorted_budgets.len(),
                            req.listen_w,
                            req.transmit_w,
                            req.sigma,
                            req.objective,
                        ));
                    }
                    canons.push(Some(canon));
                    s
                }
            };
            sub_idx[shard as usize].push(i);
        }
        econcast_trace::complete_from(
            "service",
            "route",
            route_t0,
            &[("requests", reqs.len() as u64)],
        );

        let mut out: Vec<Option<Result<PolicyResponse, ServiceError>>> = vec![None; reqs.len()];
        for (s, idxs) in sub_idx.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let sub: Vec<(&PolicyRequest, Option<CanonicalInstance>)> =
                idxs.iter().map(|&i| (&reqs[i], canons[i].take())).collect();
            let mut shard = self.shards[s]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shard.routed += sub.len() as u64;
            for family in observed[s].drain(..) {
                shard.mixes.record(family);
            }
            let results = shard.service.serve_batch_prerouted(sub);
            for (&i, r) in idxs.iter().zip(results) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every request routed to a shard"))
            .collect()
    }

    /// One shard's counter snapshot (plus its routed-request count).
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn shard_stats(&self, shard: usize) -> ServiceStats {
        self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .service
            .stats()
    }

    /// Requests routed to one shard so far (including rejected ones).
    pub fn shard_routed(&self, shard: usize) -> u64 {
        self.shards[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .routed
    }

    /// Cache residency summed across shards: `(entries, bytes)` —
    /// the LRU gauge pair a v7 metrics scrape reports. Shards hold
    /// disjoint key ranges, so the sums are deployment totals.
    pub fn cache_residency(&self) -> (u64, u64) {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let st = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            entries += st.service.stats().lru_len;
            bytes += st.service.cache_bytes() as u64;
        }
        (entries, bytes)
    }

    /// Counter snapshot summed across every shard.
    pub fn aggregate_stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for s in 0..self.shards.len() {
            total.merge(&self.shard_stats(s));
        }
        total
    }

    /// One prewarm cycle: for every shard, build grids for up to
    /// `max_per_cycle` of its hottest observed families with at least
    /// `min_hits` observations that are not yet resident. Returns the
    /// number of grids built. Each build briefly holds that shard's
    /// lock, so cycles are bounded by `max_per_cycle` to stay short.
    pub fn prewarm_once(&self) -> usize {
        let mut built = 0;
        for shard in &self.shards {
            let mut st = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let candidates = st.mixes.candidates(self.prewarm.min_hits);
            let mut cycle = 0;
            for (family, _) in candidates {
                if cycle >= self.prewarm.max_per_cycle {
                    break;
                }
                if st.service.prewarm_grid(&family) {
                    built += 1;
                    cycle += 1;
                }
            }
        }
        built
    }

    /// The prewarm configuration the router was built with.
    pub fn prewarm_config(&self) -> PrewarmConfig {
        self.prewarm
    }

    /// Snapshot of the observed homogeneous request mix merged across
    /// every shard, hottest families first — the payload of a warm
    /// handoff when this deployment's key range moves elsewhere.
    pub fn export_mix(&self) -> Vec<(FamilyKey, u64)> {
        let mut merged = MixRecorder::new();
        for shard in &self.shards {
            let st = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            merged.absorb(&st.mixes.export());
        }
        merged.export()
    }

    /// Absorbs a warm-handoff mix shipped from a departing key-range
    /// owner: every shard's recorder learns the heat (a family's
    /// future budgets hash shard-independently, so any shard may end
    /// up serving it), then bounded prewarm cycles install the hottest
    /// qualifying grids ahead of demand. Returns `(families_absorbed,
    /// grids_built)`. Purely a latency optimization — a prewarmed grid
    /// is bit-identical to the lazily built one.
    pub fn absorb_mix(&self, mix: &[(FamilyKey, u64)]) -> (usize, usize) {
        if mix.is_empty() {
            return (0, 0);
        }
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .mixes
                .absorb(mix);
        }
        // Each cycle builds at most `max_per_cycle` grids per shard;
        // iterate until a cycle builds nothing, capped by the family
        // count so absorption stays bounded under any recorder state.
        let mut built = 0;
        for _ in 0..mix.len() {
            let cycle = self.prewarm_once();
            if cycle == 0 {
                break;
            }
            built += cycle;
        }
        (mix.len(), built)
    }
}

/// Canonicalizes a (validated) request.
fn canonicalize(req: &PolicyRequest) -> CanonicalInstance {
    CanonicalInstance::new(
        &req.budgets_w,
        req.listen_w,
        req.transmit_w,
        req.sigma,
        req.objective,
        req.tolerance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::{NodeParams, ThroughputMode};

    fn router(shards: usize) -> ShardRouter {
        ShardRouter::new(RouterConfig {
            shards,
            service: ServiceConfig {
                workers: Some(1),
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        })
    }

    fn homogeneous(n: usize, rho_uw: f64) -> PolicyRequest {
        PolicyRequest::homogeneous(
            n,
            NodeParams::from_microwatts(rho_uw, 500.0, 450.0),
            0.5,
            ThroughputMode::Groupput,
            1e-2,
        )
    }

    #[test]
    fn permutations_share_a_shard_and_keys_spread() {
        let r = router(4);
        let base = PolicyRequest {
            budgets_w: vec![5e-6, 20e-6, 10e-6],
            listen_w: 500e-6,
            transmit_w: 450e-6,
            sigma: 0.5,
            objective: ThroughputMode::Groupput,
            tolerance: 1e-2,
        };
        let mut permuted = base.clone();
        permuted.budgets_w.rotate_left(1);
        assert_eq!(r.shard_of_request(&base), r.shard_of_request(&permuted));

        // Enough distinct families hit more than one shard.
        let mut seen = std::collections::HashSet::new();
        for n in 2..40 {
            seen.insert(r.shard_of_request(&homogeneous(n, 10.0)).unwrap());
        }
        assert!(seen.len() >= 2, "routing collapsed onto {seen:?}");
    }

    #[test]
    fn ring_balances_within_reason() {
        let r = router(4);
        let mut counts = [0u32; 4];
        for n in 2..200 {
            for rho in [3.0f64, 7.0, 11.0] {
                counts[r.shard_of_request(&homogeneous(n, rho)).unwrap() as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        for (s, &c) in counts.iter().enumerate() {
            let share = f64::from(c) / f64::from(total);
            assert!(
                (0.05..=0.60).contains(&share),
                "shard {s} holds {share:.2} of keys: {counts:?}"
            );
        }
    }

    #[test]
    fn sharded_responses_match_single_service() {
        let reqs: Vec<PolicyRequest> = (0..24)
            .map(|i| match i % 3 {
                0 => homogeneous(5 + i, 10.0),
                1 => PolicyRequest {
                    budgets_w: vec![5e-6, 10e-6 + i as f64 * 1e-6, 20e-6],
                    listen_w: 500e-6,
                    transmit_w: 450e-6,
                    sigma: 0.5,
                    objective: ThroughputMode::Anyput,
                    tolerance: 1e-2,
                },
                _ => homogeneous(4, 5.0 + i as f64),
            })
            .collect();

        let mut single = PolicyService::new(ServiceConfig {
            workers: Some(1),
            ..ServiceConfig::default()
        });
        let expected = single.serve_batch(&reqs);
        let sharded = router(3).serve_batch(&reqs);
        for (i, (a, b)) in expected.iter().zip(&sharded).enumerate() {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(
                a.throughput.to_bits(),
                b.throughput.to_bits(),
                "request {i} throughput diverged"
            );
            for (pa, pb) in a.policies.iter().zip(&b.policies) {
                assert_eq!(pa.listen.to_bits(), pb.listen.to_bits());
                assert_eq!(pa.transmit.to_bits(), pb.transmit.to_bits());
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected_on_shard_zero() {
        let r = router(2);
        let bad = PolicyRequest {
            budgets_w: vec![],
            listen_w: 500e-6,
            transmit_w: 450e-6,
            sigma: 0.5,
            objective: ThroughputMode::Groupput,
            tolerance: 1e-2,
        };
        assert_eq!(r.shard_of_request(&bad), None);
        let out = r.serve_batch(std::slice::from_ref(&bad));
        assert!(matches!(out[0], Err(ServiceError::BadRequest(_))));
        assert_eq!(r.shard_stats(0).errors, 1);
        assert_eq!(r.aggregate_stats().errors, 1);
    }

    #[test]
    fn prewarm_builds_hot_families_and_grid_serves() {
        // Prewarmed-only shards: grids are never built on the request
        // path, so the prewarmer is what installs them.
        let r = ShardRouter::new(RouterConfig {
            shards: 2,
            service: ServiceConfig {
                workers: Some(1),
                lazy_grid_builds: false,
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        });
        // Three sightings of one family qualify it (default min_hits);
        // repeats after the first are exact-LRU hits, but the router
        // records the family at routing time regardless of tier.
        let req = homogeneous(10, 10.0);
        let shard = r.shard_of_request(&req).unwrap() as usize;
        for _ in 0..3 {
            let out = r.serve_batch(std::slice::from_ref(&req));
            assert!(out[0].is_ok());
        }
        assert_eq!(r.shard_stats(shard).grid_builds, 0, "no inline build");
        assert_eq!(r.prewarm_once(), 1, "one hot family to build");
        assert_eq!(r.prewarm_once(), 0, "already resident");
        assert_eq!(r.shard_stats(shard).grid_prewarms, 1);
        assert_eq!(r.aggregate_stats().grid_prewarms, 1);

        // Later budgets in the same family that land on the same
        // shard (different budgets hash independently) now
        // grid-serve, with no build charged to the request path. The
        // grid may decline an interval whose certified error exceeds
        // the tier, so scan several and require at least one hit.
        let laters: Vec<PolicyRequest> = (1..200)
            .map(|k| PolicyRequest {
                tolerance: 1e-1, // coarsest tier: most intervals serve
                ..homogeneous(10, 10.0 + 0.5 * f64::from(k))
            })
            .filter(|req| r.shard_of_request(req).unwrap() as usize == shard)
            .take(6)
            .collect();
        assert!(!laters.is_empty(), "no nearby budget shares the shard");
        let out = r.serve_batch(&laters);
        let grid_hits = out
            .iter()
            .filter(|r| r.as_ref().unwrap().tier == econcast_proto::service::ServedTier::Grid)
            .count();
        assert!(grid_hits > 0, "prewarmed grid never served");
        assert_eq!(r.shard_stats(shard).grid_builds, 0);
    }

    #[test]
    fn absorbed_mix_prewarms_like_local_heat() {
        let r = ShardRouter::new(RouterConfig {
            shards: 2,
            service: ServiceConfig {
                workers: Some(1),
                lazy_grid_builds: false,
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        });
        // The departing owner's recorder: one family hot enough to
        // qualify (min_hits), one below the floor.
        let mut src = MixRecorder::new();
        for _ in 0..5 {
            src.record(FamilyKey::new(
                10,
                500e-6,
                450e-6,
                0.5,
                ThroughputMode::Groupput,
            ));
        }
        src.record(FamilyKey::new(
            50,
            500e-6,
            450e-6,
            0.5,
            ThroughputMode::Groupput,
        ));
        let (absorbed, built) = r.absorb_mix(&src.export());
        assert_eq!(absorbed, 2);
        assert_eq!(built, 2, "the hot family builds once per shard");
        assert_eq!(r.aggregate_stats().grid_prewarms, 2);

        // A cold deployment now grid-serves the family without any
        // inline build — the handoff's entire point. The grid may
        // decline an interval whose certified error exceeds the tier,
        // so scan a few budgets and require at least one hit.
        let probes: Vec<PolicyRequest> = (1..40)
            .map(|k| PolicyRequest {
                tolerance: 1e-1,
                ..homogeneous(10, 10.0 + 0.5 * f64::from(k))
            })
            .collect();
        let out = r.serve_batch(&probes);
        let grid_hits = out
            .iter()
            .filter(|r| r.as_ref().unwrap().tier == econcast_proto::service::ServedTier::Grid)
            .count();
        assert!(grid_hits > 0, "absorbed mix never produced a grid serve");
        assert_eq!(r.aggregate_stats().grid_builds, 0);

        // Absorbing the same mix again is idempotent for residency.
        let (_, rebuilt) = r.absorb_mix(&src.export());
        assert_eq!(rebuilt, 0, "grids already resident");
    }
}
