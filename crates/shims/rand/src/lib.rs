//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the *exact* API subset it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] for the primitive
//! types drawn by the simulator and samplers.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, well-studied stream. It is **not** the upstream
//! `StdRng` (ChaCha12), so absolute random streams differ from builds
//! against the real crate; everything in this workspace only relies on
//! determinism-given-seed, which holds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG ("standard"
/// distribution in upstream terms: `[0, 1)` for floats, full range for
/// integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors upstream's `Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `[low, high)`. Panics when the range is empty.
    fn gen_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range requires low < high");
        low + (high - low) * self.gen::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 state
    /// expansion, the construction the xoshiro authors recommend).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion; guarantees a non-zero state.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_like_generic_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
