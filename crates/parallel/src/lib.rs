//! # econcast-parallel — deterministic fork-join for the hot kernels
//!
//! The build environment is offline, so `rayon` is unavailable; this
//! crate is the minimal stand-in the workspace needs: run `n` indexed,
//! independent jobs across a configurable number of OS threads and
//! return their results **in index order**.
//!
//! Determinism contract: each job computes exactly the same
//! floating-point operations regardless of the thread count, and the
//! caller merges results in index order, so parallel and serial
//! execution are *bit-identical* (verified by the statespace tests).
//!
//! Thread count resolution order:
//! 1. the last call to [`set_threads`] (the `repro --threads` flag);
//! 2. the `ECONCAST_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 = unset (fall back to env / hardware).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent [`run`] calls.
/// `Some(1)` forces serial execution; `None` restores auto-detection.
pub fn set_threads(n: Option<usize>) {
    CONFIGURED.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count [`run`] will use for a batch of `jobs` jobs.
pub fn effective_threads(jobs: usize) -> usize {
    let configured = CONFIGURED.load(Ordering::Relaxed);
    let base = if configured > 0 {
        configured
    } else if let Some(n) = std::env::var("ECONCAST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        n
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    base.min(jobs).max(1)
}

/// Runs `jobs` independent indexed jobs, returning `f(0)..f(jobs-1)`
/// in index order. Uses a round-robin static split across
/// [`effective_threads`] workers; falls back to a plain serial loop
/// for one worker (no thread spawn in the common small case).
pub fn run<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = effective_threads(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }

    // Each worker takes the interleaved index set {w, w+workers, ...}
    // and returns (index, result) pairs; the caller reassembles them in
    // index order. Interleaving balances load when job cost varies
    // with the index.
    let mut out: Vec<Option<T>> = Vec::with_capacity(jobs);
    out.resize_with(jobs, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    let mut acc = Vec::with_capacity(jobs / workers + 1);
                    let mut i = w;
                    while i < jobs {
                        acc.push((i, f(i)));
                        i += workers;
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("parallel worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every job index is covered"))
        .collect()
}

/// Like [`run`], but each job `i` additionally receives exclusive
/// access to `scratch[i]` — preallocated per-job buffers that survive
/// across calls, so steady-state invocations allocate nothing. The
/// caller chooses the worker count explicitly (pass 1 to force the
/// serial path); results return in index order either way, and a job's
/// computation is identical at every worker count.
pub fn run_on_slices<S, T, F>(scratch: &mut [S], workers: usize, f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let jobs = scratch.len();
    let workers = workers.clamp(1, jobs.max(1));
    if workers <= 1 || jobs <= 1 {
        return scratch
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }

    // Deal the (index, &mut scratch) pairs round-robin to the workers;
    // each worker owns its hand, so no locking is needed.
    let mut hands: Vec<Vec<(usize, &mut S)>> = (0..workers)
        .map(|w| Vec::with_capacity(jobs / workers + usize::from(w < jobs % workers)))
        .collect();
    for (i, s) in scratch.iter_mut().enumerate() {
        hands[i % workers].push((i, s));
    }

    let mut out: Vec<Option<T>> = Vec::with_capacity(jobs);
    out.resize_with(jobs, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = hands
            .into_iter()
            .map(|hand| {
                let f = &f;
                scope.spawn(move || {
                    hand.into_iter()
                        .map(|(i, s)| (i, f(i, s)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("parallel worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("every job index is covered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_on_slices_sees_scratch_and_orders_results() {
        let mut scratch: Vec<u64> = vec![0; 9];
        for (call, workers) in [(1u64, 1usize), (2, 4)] {
            let got = run_on_slices(&mut scratch, workers, |i, s| {
                *s += 1; // scratch is genuinely mutable per job
                (i as u64, *s)
            });
            assert_eq!(got.len(), 9);
            for (i, &(idx, seen)) in got.iter().enumerate() {
                assert_eq!(idx, i as u64, "results in index order");
                assert_eq!(seen, call, "scratch persisted across calls");
            }
        }
        assert!(scratch.iter().all(|&s| s == 2));
    }

    #[test]
    fn results_are_in_index_order() {
        let got = run(17, |i| i * i);
        assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job() {
        assert_eq!(run(0, |i| i), Vec::<usize>::new());
        assert_eq!(run(1, |i| i + 10), vec![10]);
    }

    /// One test covers every `set_threads` interaction — the override
    /// is process-global, so splitting these across `#[test]` fns
    /// would race under the parallel test runner.
    #[test]
    fn thread_override_semantics() {
        let f = |i: usize| (i as f64).sqrt().sin();
        set_threads(Some(1));
        let serial = run(64, f);
        set_threads(Some(8));
        let parallel = run(64, f);
        // Bit-identical, not just approximately equal.
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        set_threads(Some(32));
        assert_eq!(effective_threads(4), 4);
        assert_eq!(effective_threads(0), 1);
        set_threads(None);
        assert!(effective_threads(1000) >= 1);
    }
}
