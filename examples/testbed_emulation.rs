//! Section VIII in software: the eZ430-RF2500-SEH testbed emulation.
//!
//! Runs EconCast-C on the CC2500 radio model with colliding pings,
//! drifting sleep clocks, and regulator overhead; verifies consumption
//! with the 5 F capacitor-discharge method (eqs. (25)–(26)); and
//! streams the observer node's log over the length-prefixed serial
//! codec the way the paper's 6th node reports to a PC.
//!
//! ```text
//! cargo run --release --example testbed_emulation
//! ```

use bytes::BytesMut;
use econcast::hw::{Capacitor, DischargeMeasurement, TestbedConfig};
use econcast::proto::{DataFrame, Frame, ReceptionReport, StreamCodec};

fn main() {
    let mut cfg = TestbedConfig::paper_setup(5, 1.0, 0.25);
    cfg.duration_s = 3600.0; // one emulated hour
    println!(
        "emulating N = {} nodes, ρ = {} mW, σ = {}, {} s of channel time…\n",
        cfg.n,
        cfg.budget_w * 1e3,
        cfg.sigma,
        cfg.duration_s
    );
    let run = cfg.run();

    println!("throughput      T̃^σ = {:.5}", run.throughput);
    println!(
        "achievable (ρ)  T^σ = {:.5}  → Ideal ratio  {:.1}%",
        run.achievable_ideal,
        100.0 * run.ratio_ideal()
    );
    println!(
        "achievable (P)  T^σ = {:.5}  → Relaxed ratio {:.1}%",
        run.achievable_relaxed,
        100.0 * run.ratio_relaxed()
    );
    println!(
        "virtual battery band: {:.3} / {:.3} / {:.3} of budget (min/mean/max)",
        run.battery_ratio_min, run.battery_ratio_mean, run.battery_ratio_max
    );
    println!(
        "ping distribution (k = 0..): {:?}",
        run.ping_distribution
            .iter()
            .map(|p| format!("{:.1}%", 100.0 * p))
            .collect::<Vec<_>>()
    );

    // Capacitor-rig verification of the measured power (Section VIII-B).
    let m = DischargeMeasurement::synthesize(
        Capacitor::measurement_rig(),
        run.measured_power_w,
        1800.0,
    );
    println!(
        "\ncapacitor rig: 3.600 V → {:.3} V over 30 min ⇒ P = {:.3} mW (target ρ = {:.1} mW)",
        m.v_end,
        1e3 * m.average_power_w(),
        cfg.budget_w * 1e3
    );

    // Observer node: forward each node's final reception report to the
    // PC over the serial codec and decode on the other end.
    let mut wire = BytesMut::new();
    for (i, stats) in run.report.nodes.iter().enumerate() {
        let frame = Frame::Data(DataFrame {
            source: i as u16,
            seq: stats.packets_sent as u32,
            report: vec![ReceptionReport {
                peer: u16::MAX, // aggregate row: total from all peers
                count: stats.packets_received as u32,
            }],
        });
        StreamCodec::encode(&frame, &mut wire);
    }
    let mut codec = StreamCodec::new();
    codec.feed(&wire);
    let frames = codec.drain().expect("observer link is clean");
    println!(
        "\nobserver uplink: decoded {} report frames ({} bytes)",
        frames.len(),
        wire.len()
    );
    for f in frames {
        if let Frame::Data(d) = f {
            println!(
                "  node{}: {} packets sent, {} received",
                d.source, d.seq, d.report[0].count
            );
        }
    }
}
