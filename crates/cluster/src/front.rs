//! The cluster's TCP front-end: one address, many backend processes.
//!
//! [`ClusterFront`] is protocol-compatible with
//! `econcast_service::PolicyServer` — `PolicyClient` connects to it
//! unchanged and cannot tell a cluster from a single process. It
//! speaks the same length-prefixed `ServiceCodec` family:
//!
//! * `Hello` → `Welcome` (the advertised shard count is the cluster's
//!   **slot** count);
//! * pipelined `Request`s are served as routed batches through the
//!   [`ClusterRouter`] (remote fan-out, local failover);
//! * `StatsRequest(shard = i)` answers with slot `i`'s serving
//!   counters (a remote slot is asked over the wire, via a fresh
//!   short-timeout dial made *outside* the router lock — the control
//!   plane never blocks the data plane);
//!   `shard = 0xFFFF` answers with the cluster-wide fan-in — backend
//!   aggregates + local slots + the fallback solver;
//! * `Ping` → `Pong` (liveness, untouched by routing);
//! * decode errors drop the connection without a reply, exactly like
//!   the single-process server.
//!
//! Protocol compatibility is by construction, not by convention: both
//! front-ends run the *same* connection loop
//! (`econcast_service::serve_connection_gated`), differing only in the
//! [`ServeTarget`] behind it — a `ShardRouter` there, the
//! mutex-guarded [`ClusterRouter`] here. Connections are handled
//! thread-per-connection behind a bounded accept gate; batches
//! serialize through the router's mutex (the router owns the dialer
//! pool — remote fan-out inside a batch is still concurrent). A
//! shutdown drains: handlers finish everything their clients already
//! sent before closing, so a planned drain is never a client-visible
//! stream error.

use crate::router::{ClusterRouter, StatsSource};
use econcast_metrics::{MetricsSnapshot, GAUGE_LIVE_BACKENDS, GAUGE_SATURATION_OPEN};
use econcast_proto::service::{WireServiceStats, STATS_COUNTERS, STATS_SHARD_AGGREGATE};
use econcast_service::stats::{StatKind, STAT_KINDS};
use econcast_service::{
    serve_connection_admitted, AdmissionController, ConnOptions, FamilyKey, PolicyClient,
    PolicyRequest, PolicyResponse, ServeTarget, ServiceError, ServiceStats,
};

/// Timeout for the fresh per-request dials a stats fan-in (or a
/// `MixSeed` forward) makes. Deliberately short: these are advisory,
/// and they run with the router unlocked but a client waiting.
const STATS_DIAL_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);
/// How long a shutdown waits for in-flight connections to drain.
const DRAIN_WAIT: std::time::Duration = std::time::Duration::from_secs(5);
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-slot re-basing state for cluster fan-ins. A respawned (or
/// quarantined) backend restarts its counters at zero; summed naively
/// that reads as every rate going sharply negative right when the
/// cluster healed. The front instead remembers, per slot, the last
/// raw scrape and a `base` accumulated from dead incarnations: a
/// per-slot monotonicity break (any counter below its last observed
/// value) folds the previous incarnation's final totals into the
/// base, and every contribution is reported as `base + raw` — so the
/// front's aggregates stay monotone across respawns.
///
/// Only counters (and, for metrics, histograms — which reset with
/// their process) are re-based. Gauges are instantaneous readings: a
/// decrease is ordinary (an LRU evicted, a queue drained), never a
/// restart signal, and re-basing one would double-count live state.
#[derive(Debug, Default)]
struct ScrapeRebase {
    slots: Vec<SlotRebase>,
}

#[derive(Debug, Default, Clone)]
struct SlotRebase {
    /// Stats-plane counters: accumulated totals of dead incarnations
    /// (empty until the slot is first scraped), and the last raw
    /// fetch.
    stats_base: Vec<u64>,
    stats_last: Vec<u64>,
    /// Metrics-plane siblings. The base's gauges are always zero (a
    /// dead process holds no live state).
    metrics_base: MetricsSnapshot,
    metrics_last: MetricsSnapshot,
}

impl ScrapeRebase {
    fn slot(&mut self, slot: usize) -> &mut SlotRebase {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, SlotRebase::default());
        }
        &mut self.slots[slot]
    }

    /// Folds one slot's fresh stats fetch into its monotone view.
    fn stats(&mut self, slot: usize, fresh: &ServiceStats) -> ServiceStats {
        let state = self.slot(slot);
        if state.stats_base.is_empty() {
            state.stats_base = vec![0; STATS_COUNTERS];
            state.stats_last = vec![0; STATS_COUNTERS];
        }
        let raw = fresh.to_wire().to_array();
        let reset = raw
            .iter()
            .zip(&state.stats_last)
            .enumerate()
            .any(|(i, (&cur, &last))| STAT_KINDS[i] == StatKind::Counter && cur < last);
        let mut adjusted = raw;
        for i in 0..STATS_COUNTERS {
            if STAT_KINDS[i] == StatKind::Counter {
                if reset {
                    state.stats_base[i] += state.stats_last[i];
                }
                adjusted[i] += state.stats_base[i];
            }
            state.stats_last[i] = raw[i];
        }
        ServiceStats::from_wire(&WireServiceStats::from_array(adjusted))
    }

    /// Folds one slot's fresh metrics scrape into its monotone view.
    fn metrics(&mut self, slot: usize, fresh: &MetricsSnapshot) -> MetricsSnapshot {
        let state = self.slot(slot);
        let reset = state
            .metrics_last
            .counters
            .iter()
            .zip(&fresh.counters)
            .any(|(&last, &cur)| cur < last);
        if reset {
            let mut dead = state.metrics_last.clone();
            for gauge in &mut dead.gauges {
                gauge.1 = 0;
            }
            state.metrics_base.merge(&dead);
        }
        state.metrics_last = fresh.clone();
        let mut adjusted = fresh.clone();
        adjusted.merge(&state.metrics_base);
        adjusted
    }
}

/// The cluster router as a connection-loop target: every protocol
/// interaction locks the mutex for exactly one router operation.
/// (A newtype over the mutex, not `impl ServeTarget for
/// Mutex<ClusterRouter>` — the orphan rule forbids covering a local
/// type with a foreign one.)
struct FrontTarget {
    router: Arc<Mutex<ClusterRouter>>,
    /// The front's shared admission controller: each serve republishes
    /// the router's current backend-saturation hint into it, so a shed
    /// at the front advertises a `retry_after_us` no shorter than what
    /// the saturated backends themselves asked for.
    admission: Arc<AdmissionController>,
    /// Shared across every connection: per-slot counter re-basing so
    /// fan-ins stay monotone across backend respawns.
    rebase: Arc<Mutex<ScrapeRebase>>,
}

impl FrontTarget {
    fn router(&self) -> std::sync::MutexGuard<'_, ClusterRouter> {
        self.router
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn rebase(&self) -> std::sync::MutexGuard<'_, ScrapeRebase> {
        self.rebase
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl ServeTarget for FrontTarget {
    fn shard_count(&self) -> usize {
        self.router().num_slots()
    }

    fn serve(&self, reqs: &[PolicyRequest]) -> Vec<Result<PolicyResponse, ServiceError>> {
        let router = &mut *self.router();
        let out = router.serve_batch(reqs);
        // Backpressure propagation upstream: whatever the backends are
        // currently advertising becomes the floor of the front's own
        // retry hints (cleared automatically once the windows lapse).
        self.admission
            .set_external_hint_us(router.saturation_hint_us());
        out
    }

    /// Stats fan-in without blocking the data plane: the router lock
    /// is held only for a network-free snapshot; the per-backend
    /// round-trips (fresh short-timeout dials) happen unlocked, so a
    /// monitoring poll against a slow or unreachable backend cannot
    /// freeze request serving behind the mutex.
    fn stats(&self, shard: u16) -> Option<ServiceStats> {
        let (sources, fallback) = self.router().stats_sources();
        let fetch = |source: &StatsSource| match source {
            StatsSource::Local(stats) => Some(*stats),
            StatsSource::Remote { addr, attempt } => {
                if !attempt {
                    return None;
                }
                PolicyClient::connect_with_timeout(*addr, 1, STATS_DIAL_TIMEOUT)
                    .ok()?
                    .stats(None)
                    .ok()
            }
        };
        if shard == STATS_SHARD_AGGREGATE {
            // The fan-in is what the cluster can *see*: down or
            // unreachable backends contribute nothing while absent.
            // Each slot's fetch passes through the per-slot re-base,
            // so a respawned backend restarting at zero never drags
            // the aggregate's counters backwards.
            let mut total = fallback;
            let mut rebase = self.rebase();
            for (slot, source) in sources.iter().enumerate() {
                if let Some(stats) = fetch(source) {
                    total.merge(&rebase.stats(slot, &stats));
                }
            }
            drop(rebase);
            // The robustness counters are distribution-layer facts
            // only the router knows; overlay them onto the aggregate
            // (backends report them as zero).
            let cs = self.router().cluster_stats();
            total.auto_respawns = cs.auto_respawns;
            total.quarantines = cs.quarantines;
            total.reshard_handoffs = cs.reshard_handoffs;
            total.injected_faults = cs.injected_faults;
            Some(total)
        } else {
            // `None` (unknown slot or unreachable backend) becomes a
            // typed refusal in the connection loop.
            fetch(sources.get(usize::from(shard))?)
        }
    }

    /// Cluster-wide metrics fan-in, same locking discipline as
    /// [`stats`](Self::stats): a network-free snapshot under the
    /// router lock, per-backend scrapes on fresh short-timeout dials
    /// outside it. The front's own process-global hub already covers
    /// local slots, the fallback solver, and the front's serve path —
    /// remote backends are the only scrapes to fan in. Each remote
    /// scrape passes through the per-slot re-base so a respawned
    /// backend's counter reset never makes the aggregate dip; the
    /// router-owned cluster gauges (live slots, open saturation
    /// windows) are injected last. The connection loop adds the
    /// front's admission-queue gauge on top.
    fn metrics(&self) -> MetricsSnapshot {
        let (sources, live, windows, (lru_entries, lru_bytes)) = {
            let router = self.router();
            let (sources, _) = router.stats_sources();
            (
                sources,
                router.live_slots(),
                router.saturation_windows_open(),
                router.local_cache_residency(),
            )
        };
        let scrapes: Vec<(usize, MetricsSnapshot)> = sources
            .iter()
            .enumerate()
            .filter_map(|(slot, source)| match source {
                StatsSource::Remote {
                    addr,
                    attempt: true,
                } => {
                    let snap = PolicyClient::connect_with_timeout(*addr, 1, STATS_DIAL_TIMEOUT)
                        .ok()?
                        .metrics()
                        .ok()?;
                    Some((slot, snap))
                }
                _ => None,
            })
            .collect();
        let mut total = econcast_metrics::snapshot();
        let mut rebase = self.rebase();
        for (slot, snap) in &scrapes {
            total.merge(&rebase.metrics(*slot, snap));
        }
        drop(rebase);
        // Backends report these as zero; the router owns them. The
        // LRU gauges add the in-process residency (local slots + the
        // fallback solver) on top of what the backend scrapes carried.
        total.gauges[GAUGE_LIVE_BACKENDS].1 += live;
        total.gauges[GAUGE_SATURATION_OPEN].1 += windows;
        total.gauges[econcast_metrics::GAUGE_LRU_ENTRIES].1 += lru_entries;
        total.gauges[econcast_metrics::GAUGE_LRU_BYTES].1 += lru_bytes;
        total
    }

    /// A `MixSeed` received by the front fans out to every
    /// attemptable remote backend (fresh short-timeout dials, router
    /// unlocked) — seeding a cluster warms the backends that actually
    /// own grids. Local slots have no prewarmer and absorb nothing.
    fn seed_mix(&self, mix: &[(FamilyKey, u64)]) -> (usize, usize) {
        let targets: Vec<SocketAddr> = self
            .router()
            .remote_slot_addrs()
            .into_iter()
            .filter(|&(_, _, attempt)| attempt)
            .map(|(_, addr, _)| addr)
            .collect();
        let (mut absorbed, mut built) = (0usize, 0usize);
        for addr in targets {
            let seeded = PolicyClient::connect_with_timeout(addr, 1, STATS_DIAL_TIMEOUT)
                .and_then(|mut client| client.seed_mix(mix));
            if let Ok((a, b)) = seeded {
                absorbed = absorbed.max(usize::from(a));
                built += usize::from(b);
            }
        }
        (absorbed, built)
    }
}

/// Tuning knobs for a [`ClusterFront`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontConfig {
    /// Maximum concurrently served connections; excess clients are
    /// refused (connection closed immediately).
    pub max_connections: usize,
    /// Largest request batch served as one routed unit; longer
    /// pipelines are split. Advertised in the `Welcome` handshake.
    pub max_batch: usize,
    /// Admission-queue bound shared across every front connection
    /// (the front's own shed ladder, in front of the router). Same
    /// semantics as `ServiceConfig::queue_capacity` on a single
    /// server.
    pub queue_capacity: usize,
    /// Floor on the front's `retry_after_us` hints; same semantics as
    /// `ServiceConfig::max_queue_delay`. Backend saturation hints can
    /// raise the advertised backoff past this, never below.
    pub max_queue_delay: std::time::Duration,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            max_connections: 64,
            max_batch: 1024,
            queue_capacity: 256,
            max_queue_delay: std::time::Duration::from_millis(50),
        }
    }
}

/// A bound, not-yet-serving cluster front-end.
#[derive(Debug)]
pub struct ClusterFront {
    listener: TcpListener,
    router: Arc<Mutex<ClusterRouter>>,
    cfg: FrontConfig,
}

impl ClusterFront {
    /// Binds the listener in front of a router. Use port 0 for an
    /// ephemeral port.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: ClusterRouter,
        cfg: FrontConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(ClusterFront {
            listener,
            router: Arc::new(Mutex::new(router)),
            cfg,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The shared router (cluster stats, re-targeting).
    pub fn router(&self) -> &Arc<Mutex<ClusterRouter>> {
        &self.router
    }

    /// Starts the acceptor and returns a handle that stops it on
    /// [`FrontHandle::shutdown`] or drop, draining live connections.
    pub fn spawn(self) -> FrontHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let router = Arc::clone(&self.router);
        let max_batch = self.cfg.max_batch.max(1);
        let max_connections = self.cfg.max_connections.max(1);
        // One admission controller for the whole front: every
        // connection's requests share the bounded queue, exactly as
        // on a single-process server.
        let admission = Arc::new(AdmissionController::new(
            self.cfg.queue_capacity,
            self.cfg.max_queue_delay,
        ));
        // One re-base table for the whole front: monotone fan-ins
        // must survive the scraping connection coming and going too.
        let rebase = Arc::new(Mutex::new(ScrapeRebase::default()));

        let acceptor = {
            let (stop, router, active) =
                (Arc::clone(&stop), Arc::clone(&router), Arc::clone(&active));
            let admission = Arc::clone(&admission);
            let rebase = Arc::clone(&rebase);
            std::thread::spawn(move || loop {
                let stream = match self.listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        continue;
                    }
                };
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Over the pool bound: refuse outright rather than
                // park — the router mutex serializes batches anyway,
                // so queueing refused clients buys nothing.
                if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
                    active.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let (router, active, stop) =
                    (Arc::clone(&router), Arc::clone(&active), Arc::clone(&stop));
                let admission = Arc::clone(&admission);
                let rebase = Arc::clone(&rebase);
                std::thread::spawn(move || {
                    struct Guard(Arc<AtomicUsize>);
                    impl Drop for Guard {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    let _guard = Guard(active);
                    // Admitted + gated: every request walks the
                    // front's shed ladder before routing, and on
                    // shutdown the handler drains what the client
                    // already sent (including a grace period for
                    // partially received frames), then closes — no
                    // client-visible mid-stream error.
                    let target = FrontTarget {
                        router,
                        admission: Arc::clone(&admission),
                        rebase,
                    };
                    serve_connection_admitted(
                        stream,
                        &target,
                        ConnOptions {
                            max_batch,
                            ..ConnOptions::default()
                        },
                        &admission,
                        &stop,
                    );
                });
            })
        };

        FrontHandle {
            addr,
            router,
            admission,
            stop,
            active,
            acceptor: Some(acceptor),
        }
    }
}

/// Running front-end handle; shuts the acceptor down when dropped.
#[derive(Debug)]
pub struct FrontHandle {
    addr: SocketAddr,
    router: Arc<Mutex<ClusterRouter>>,
    admission: Arc<AdmissionController>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl FrontHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router (cluster stats, re-targeting).
    pub fn router(&self) -> &Arc<Mutex<ClusterRouter>> {
        &self.router
    }

    /// The front's shared admission controller (queue depth, overload
    /// counters) — one per front, shared by every connection.
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Stops accepting, then drains: live connections serve every
    /// request their clients already sent (plus a short grace for
    /// partially received frames) before closing, and the shutdown
    /// waits for them — bounded by an internal deadline so a wedged
    /// handler cannot hang it forever.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of accept() with a throwaway connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Drain: handlers notice the stop flag on their next idle
        // tick and finish what is already buffered.
        let deadline = std::time::Instant::now() + DRAIN_WAIT;
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
}

impl Drop for FrontHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}
