//! The central cross-validation of the reproduction: the
//! discrete-event simulator's long-run behaviour must match the
//! analytical (P4) optimum — throughput, power, and burstiness — since
//! Theorem 1 says the protocol's stationary distribution *is* the
//! (P4) optimizer at the converged multipliers.

use econcast::core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast::sim::{SimConfig, Simulator};
use econcast::statespace::{solve_p4, HomogeneousP4, P4Options};

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

#[test]
fn groupput_sim_tracks_p4_sigma_half() {
    let n = 5;
    let p4 = HomogeneousP4::new(n, params(), 0.5, ThroughputMode::Groupput).solve();
    let mut cfg = SimConfig::ideal_clique(
        n,
        params(),
        ProtocolConfig::capture_groupput(0.5),
        2_500_000.0,
        0xA11CE,
    );
    cfg.eta0 = p4.eta;
    cfg.warmup = 250_000.0;
    let r = Simulator::new(cfg).expect("valid config").run();

    let rel = (r.groupput - p4.throughput).abs() / p4.throughput;
    assert!(
        rel < 0.08,
        "simulated groupput {} vs analytic {} (rel err {rel})",
        r.groupput,
        p4.throughput
    );

    // Power audit: every node near its budget.
    for (i, node) in r.nodes.iter().enumerate() {
        let p = node.average_power(r.elapsed);
        let drift = (p - params().budget_w).abs() / params().budget_w;
        assert!(drift < 0.06, "node {i} power {p} drifted {drift}");
    }

    // Burstiness: per-capture bursts near eq. (34).
    let analytic_burst = p4.summary.average_burst_length().expect("burst mass");
    let sim_burst = r.mean_burst_length().expect("bursts recorded");
    let rel_b = (sim_burst - analytic_burst).abs() / analytic_burst;
    assert!(
        rel_b < 0.25,
        "burst {sim_burst} vs analytic {analytic_burst}"
    );
}

#[test]
fn anyput_sim_tracks_p4_sigma_half() {
    let n = 5;
    let p4 = HomogeneousP4::new(n, params(), 0.5, ThroughputMode::Anyput).solve();
    let mut cfg = SimConfig::ideal_clique(
        n,
        params(),
        ProtocolConfig::capture_anyput(0.5),
        2_500_000.0,
        0xB0B,
    );
    cfg.eta0 = p4.eta;
    cfg.warmup = 250_000.0;
    let r = Simulator::new(cfg).expect("valid config").run();
    let rel = (r.anyput - p4.throughput).abs() / p4.throughput;
    assert!(
        rel < 0.08,
        "simulated anyput {} vs analytic {} (rel {rel})",
        r.anyput,
        p4.throughput
    );
    // Anyput bursts: e^{1/σ} = e² ≈ 7.39 (eq. (35)).
    let sim_burst = r.mean_burst_length().expect("bursts");
    let rel_b = (sim_burst - (2.0f64).exp()).abs() / (2.0f64).exp();
    assert!(rel_b < 0.25, "anyput burst {sim_burst} vs e²");
}

#[test]
fn heterogeneous_sim_tracks_heterogeneous_p4() {
    // A 4-node network with distinct budgets AND asymmetric powers —
    // exercises the per-node multiplier scaling end to end.
    let nodes = vec![
        NodeParams::from_microwatts(5.0, 600.0, 400.0),
        NodeParams::from_microwatts(10.0, 500.0, 500.0),
        NodeParams::from_microwatts(20.0, 400.0, 600.0),
        NodeParams::from_microwatts(40.0, 550.0, 450.0),
    ];
    let p4 = solve_p4(&nodes, 0.5, ThroughputMode::Groupput, P4Options::default());
    let mut cfg = SimConfig::ideal_clique(
        4,
        nodes[0],
        ProtocolConfig::capture_groupput(0.5),
        3_000_000.0,
        0xE7E,
    );
    cfg.nodes = nodes.clone();
    // Cold start: no warm-started multipliers — the full adaptation
    // path must find the heterogeneous optimum on its own.
    cfg.eta0 = 0.0;
    cfg.warmup = 1_500_000.0;
    let r = Simulator::new(cfg).expect("valid config").run();
    let rel = (r.groupput - p4.throughput).abs() / p4.throughput;
    assert!(
        rel < 0.12,
        "heterogeneous sim {} vs analytic {} (rel {rel})",
        r.groupput,
        p4.throughput
    );
    for (i, (node, p)) in r.nodes.iter().zip(&nodes).enumerate() {
        let drift = (node.average_power(r.elapsed) - p.budget_w).abs() / p.budget_w;
        assert!(drift < 0.12, "node {i} power drift {drift}");
    }
}

#[test]
fn throughput_never_exceeds_analytic_oracle() {
    // Long runs at several seeds: the sample throughput stays below the
    // closed-form oracle (a hard information-theoretic cap).
    let n = 5;
    let p = params();
    let t_star = 20.0 * p.budget_w / (p.transmit_w + 4.0 * p.listen_w);
    for seed in [1u64, 2, 3] {
        let mut cfg =
            SimConfig::ideal_clique(n, p, ProtocolConfig::capture_groupput(0.5), 600_000.0, seed);
        cfg.eta0 = HomogeneousP4::new(n, p, 0.5, ThroughputMode::Groupput)
            .solve()
            .eta;
        let r = Simulator::new(cfg).expect("valid").run();
        assert!(
            r.groupput <= t_star * 1.02,
            "seed {seed}: groupput {} above oracle {t_star}",
            r.groupput
        );
    }
}
