//! One module per paper artifact. See each module's docs for the
//! exact workload and the paper values it is compared against.

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::Scale;

/// All experiments in paper order: `(id, description, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, fn(Scale) -> String)> {
    vec![
        (
            "table2",
            "Table II — heterogeneous 4-node example (optimal schedules)",
            table2::run,
        ),
        (
            "fig2",
            "Fig. 2 — throughput ratio vs heterogeneity h (groupput & anyput)",
            fig2::run,
        ),
        (
            "fig3",
            "Fig. 3 — throughput ratio vs X/L + Panda/Birthday/Searchlight",
            fig3::run,
        ),
        (
            "fig4",
            "Fig. 4 — average burst length vs sigma (analytic + simulation)",
            fig4::run,
        ),
        (
            "fig5",
            "Fig. 5 — latency CDF / mean / p99 + Searchlight worst case",
            fig5::run,
        ),
        (
            "fig6",
            "Fig. 6 — grid-topology groupput: oracle bound + simulation",
            fig6::run,
        ),
        (
            "fig7",
            "Fig. 7 — emulated testbed throughput ratios & battery variance",
            fig7::run,
        ),
        (
            "table3",
            "Table III — emulated EconCast-C vs Panda",
            table3::run,
        ),
        (
            "table4",
            "Table IV — distribution of pings received per packet",
            table4::run,
        ),
        (
            "ablations",
            "Ablations — σ frontier, controller schedule, estimator quality, ping tax",
            ablations::run,
        ),
    ]
}
