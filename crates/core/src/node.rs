//! Per-node identity and power parameters (paper Section III-A).

/// Index of a node in the network. Nodes are dense `0..N`, so a plain
/// newtype over `usize` keeps everything array-indexable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The power triple `(ρ_i, L_i, X_i)` of a node: its power budget and
/// its listen/transmit power consumption levels, all in watts.
///
/// Sleep power is zero by convention; the paper's footnote 2 notes that
/// a non-zero sleep draw can be folded in by reducing `ρ` or raising
/// `L` and `X`, and [`NodeParams::fold_sleep_power`] implements exactly
/// that.
///
/// Only the *ratios* `L/ρ` and `X/ρ` matter to the protocol and the
/// oracle (Section VII-A), so any consistent unit works; the
/// constructors below take watts to match the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Power budget `ρ_i` (W): harvesting rate or lifetime-derived cap.
    pub budget_w: f64,
    /// Listen/receive power consumption `L_i` (W).
    pub listen_w: f64,
    /// Transmit power consumption `X_i` (W).
    pub transmit_w: f64,
}

impl NodeParams {
    /// Creates a parameter set, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-positive or non-finite — these are
    /// construction-time programming errors, not runtime conditions.
    pub fn new(budget_w: f64, listen_w: f64, transmit_w: f64) -> Self {
        assert!(
            budget_w > 0.0 && budget_w.is_finite(),
            "power budget must be positive and finite, got {budget_w}"
        );
        assert!(
            listen_w > 0.0 && listen_w.is_finite(),
            "listen power must be positive and finite, got {listen_w}"
        );
        assert!(
            transmit_w > 0.0 && transmit_w.is_finite(),
            "transmit power must be positive and finite, got {transmit_w}"
        );
        NodeParams {
            budget_w,
            listen_w,
            transmit_w,
        }
    }

    /// Convenience constructor with all values in microwatts, the unit
    /// of the paper's numerical evaluation (Section VII).
    pub fn from_microwatts(budget_uw: f64, listen_uw: f64, transmit_uw: f64) -> Self {
        Self::new(budget_uw * 1e-6, listen_uw * 1e-6, transmit_uw * 1e-6)
    }

    /// Convenience constructor with all values in milliwatts, the unit
    /// of the testbed experiments (Section VIII).
    pub fn from_milliwatts(budget_mw: f64, listen_mw: f64, transmit_mw: f64) -> Self {
        Self::new(budget_mw * 1e-3, listen_mw * 1e-3, transmit_mw * 1e-3)
    }

    /// Accounts for a non-zero sleep power draw `s` (W) per the paper's
    /// footnote 2: the effective budget shrinks by `s` and both awake
    /// powers are measured relative to sleep.
    ///
    /// Returns `None` when the sleep draw alone exceeds the budget (the
    /// node cannot sustain even permanent sleep).
    pub fn fold_sleep_power(&self, sleep_w: f64) -> Option<Self> {
        assert!(sleep_w >= 0.0 && sleep_w.is_finite());
        let budget = self.budget_w - sleep_w;
        if budget <= 0.0 {
            return None;
        }
        Some(NodeParams {
            budget_w: budget,
            listen_w: self.listen_w - sleep_w,
            transmit_w: self.transmit_w - sleep_w,
        })
    }

    /// `X_i / L_i`, the power-consumption ratio swept in Fig. 3.
    pub fn consumption_ratio(&self) -> f64 {
        self.transmit_w / self.listen_w
    }

    /// True when the node is "sufficiently energy-constrained" in the
    /// paper's sense: a node that spent its whole budget listening would
    /// still be awake less than `threshold` of the time (the regime
    /// where constraint (9) dominates (10)).
    pub fn is_severely_constrained(&self, threshold: f64) -> bool {
        self.budget_w / self.listen_w.min(self.transmit_w) < threshold
    }

    /// Average power consumed by a node that listens an `alpha` fraction
    /// and transmits a `beta` fraction of the time (the LHS of
    /// constraint (9)).
    pub fn average_power(&self, alpha: f64, beta: f64) -> f64 {
        alpha * self.listen_w + beta * self.transmit_w
    }

    /// Whether `(alpha, beta)` satisfies the power constraint (9) and
    /// the time constraint (10) within tolerance `tol`.
    pub fn admits(&self, alpha: f64, beta: f64, tol: f64) -> bool {
        alpha >= -tol
            && beta >= -tol
            && alpha + beta <= 1.0 + tol
            && self.average_power(alpha, beta) <= self.budget_w + tol
    }
}

/// Builds a homogeneous network: `n` identical nodes (Section VII-A's
/// `ρ_i = ρ, L_i = L, X_i = X` setting).
pub fn homogeneous(n: usize, params: NodeParams) -> Vec<NodeParams> {
    vec![params; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        let a = NodeParams::new(10e-6, 500e-6, 500e-6);
        let b = NodeParams::from_microwatts(10.0, 500.0, 500.0);
        assert!((a.budget_w - b.budget_w).abs() < 1e-18);
        assert!((a.listen_w - b.listen_w).abs() < 1e-18);
        assert!((a.transmit_w - b.transmit_w).abs() < 1e-18);
        let c = NodeParams::new(1e-3, 67.08e-3, 56.29e-3);
        let d = NodeParams::from_milliwatts(1.0, 67.08, 56.29);
        assert!((c.budget_w - d.budget_w).abs() < 1e-15);
        assert!((c.listen_w - d.listen_w).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power budget must be positive")]
    fn zero_budget_rejected() {
        NodeParams::new(0.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "listen power must be positive")]
    fn nan_listen_rejected() {
        NodeParams::new(1.0, f64::NAN, 1.0);
    }

    #[test]
    fn sleep_power_folding() {
        let p = NodeParams::from_microwatts(10.0, 500.0, 600.0);
        let folded = p.fold_sleep_power(1e-6).unwrap();
        assert!((folded.budget_w - 9e-6).abs() < 1e-12);
        assert!((folded.listen_w - 499e-6).abs() < 1e-12);
        assert!((folded.transmit_w - 599e-6).abs() < 1e-12);
        // Sleep draw at/above the budget makes the node unsustainable.
        assert!(p.fold_sleep_power(10e-6).is_none());
        assert!(p.fold_sleep_power(11e-6).is_none());
    }

    #[test]
    fn severity_classification() {
        // ρ = 10 µW, L = X = 500 µW → awake at most 2% of the time.
        let p = NodeParams::from_microwatts(10.0, 500.0, 500.0);
        assert!(p.is_severely_constrained(0.1));
        // A node that can afford to be awake always is not constrained.
        let q = NodeParams::from_microwatts(1000.0, 500.0, 500.0);
        assert!(!q.is_severely_constrained(1.0));
    }

    #[test]
    fn admits_checks_both_constraints() {
        let p = NodeParams::from_microwatts(10.0, 500.0, 500.0);
        assert!(p.admits(0.01, 0.01, 1e-12)); // exactly on the power budget
        assert!(!p.admits(0.011, 0.01, 1e-12)); // power violated
        let rich = NodeParams::new(10.0, 1.0, 1.0);
        assert!(!rich.admits(0.7, 0.6, 1e-12)); // time budget violated
    }

    #[test]
    fn homogeneous_builder() {
        let p = NodeParams::from_microwatts(10.0, 500.0, 500.0);
        let net = homogeneous(5, p);
        assert_eq!(net.len(), 5);
        assert!(net.iter().all(|q| *q == p));
    }

    #[test]
    fn display_of_node_id() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
