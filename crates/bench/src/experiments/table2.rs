//! Table II: the motivating heterogeneous example of Section V-A.
//!
//! Four nodes with identical `L = X = 1 mW` but budgets
//! `ρ = {5, 10, 50, 100} µW`. The paper reports the awake percentage
//! (`α*+β*`) and the transmit share when awake (`100·β*/(α*+β*)`),
//! showing that a node's optimal transmit share depends on *other*
//! nodes' budgets. The LP optimum is degenerate in the per-node split,
//! so alongside the (P2) vertex we report the (P4) solution at
//! σ = 0.1, which is the unique entropy-regularized optimum the
//! protocol itself converges to and matches the paper's table shape.

use crate::Scale;
use econcast_core::{NodeParams, ThroughputMode};
use econcast_oracle::oracle_groupput;
use econcast_statespace::{solve_p4, P4Options};

/// Runs the experiment.
pub fn run(_scale: Scale) -> String {
    let budgets_mw = [0.005, 0.01, 0.05, 0.1];
    let nodes: Vec<NodeParams> = budgets_mw
        .iter()
        .map(|&b| NodeParams::from_milliwatts(b, 1.0, 1.0))
        .collect();

    let lp = oracle_groupput(&nodes);
    let p4 = solve_p4(&nodes, 0.1, ThroughputMode::Groupput, P4Options::default());

    let mut out = String::new();
    out.push_str("Table II — heterogeneous example (L = X = 1 mW)\n");
    out.push_str(
        "paper:   awake% = 0.5 / 1.0 / 5.0 / 10.0 ; tx-when-awake% = 20.0 / 22 / 53.6 / 65.7\n\n",
    );
    out.push_str("node  rho(mW)  LP awake%  LP tx-share%  P4 awake%  P4 tx-share%\n");
    for i in 0..4 {
        let lp_awake = 100.0 * lp.awake_fraction(i);
        let lp_share = 100.0 * lp.transmit_share_when_awake(i).unwrap_or(0.0);
        let p4_awake = 100.0 * (p4.alpha[i] + p4.beta[i]);
        let p4_share = 100.0 * p4.beta[i] / (p4.alpha[i] + p4.beta[i]).max(1e-300);
        out.push_str(&format!(
            "{i:>4}  {:>7.3}  {lp_awake:>9.2}  {lp_share:>12.2}  {p4_awake:>9.2}  {p4_share:>12.2}\n",
            budgets_mw[i]
        ));
    }
    out.push_str(&format!(
        "\noracle groupput T*_g = {:.4} (LP); achievable T^0.1 = {:.4}\n",
        lp.throughput, p4.throughput
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_rows_and_the_trend() {
        let s = run(Scale::Quick);
        assert_eq!(s.lines().filter(|l| l.starts_with("   ")).count(), 4);
        assert!(s.contains("oracle groupput"));
    }
}
