//! Native request/response types and their wire conversions.

use econcast_core::{NodeParams, ThroughputMode};
use econcast_oracle::AchievabilityGap;
use econcast_proto::service::{
    PolicyKernel, ServedTier, ServiceErrorCode, WireObjective, WirePolicy, WirePolicyError,
    WirePolicyRequest, WirePolicyResponse, MAX_WIRE_NODES,
};

/// One policy request: "tell these `n` nodes how to behave".
///
/// All nodes share the radio powers `(listen_w, transmit_w)`; the
/// heterogeneity is in the budgets, matching the paper's experiment
/// grids (same CC2500 radio, different harvesting conditions).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRequest {
    /// Per-node power budgets `ρ_i` (W), in the caller's node order.
    pub budgets_w: Vec<f64>,
    /// Listen power `L` (W).
    pub listen_w: f64,
    /// Transmit power `X` (W).
    pub transmit_w: f64,
    /// Entropy temperature σ.
    pub sigma: f64,
    /// Throughput objective.
    pub objective: ThroughputMode,
    /// Requested relative policy accuracy (quantized onto decade tiers
    /// for caching; see [`econcast_statespace::quantize_tolerance`]).
    pub tolerance: f64,
}

/// One node's served policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePolicy {
    /// Listen-time fraction `α_i`.
    pub listen: f64,
    /// Transmit-time fraction `β_i`.
    pub transmit: f64,
}

/// A served policy batch entry: per-node policies in the *request's*
/// node order, plus the achievability-gap certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyResponse {
    /// Per-node `(listen, transmit)` fractions, caller order.
    pub policies: Vec<NodePolicy>,
    /// Expected network throughput `E_π[T_w]` under the policy.
    pub throughput: f64,
    /// Which cache tier answered.
    pub tier: ServedTier,
    /// Which solve kernel produced the underlying policy — stable
    /// across cache hits (an exact-tier hit reports the kernel that
    /// originally filled the entry), so large-N cache behaviour is
    /// observable per kernel.
    pub kernel: PolicyKernel,
    /// Whether the producing solve met its tolerance (true for the
    /// grid/closed-form tiers, whose scalar dual is solved exactly).
    pub converged: bool,
    /// Weak-duality certificate `T^σ ≤ T* ≤ D(η)`.
    pub certificate: AchievabilityGap,
}

/// Why a request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// A field failed validation.
    BadRequest(&'static str),
    /// Heterogeneous instance beyond the exact solver's reach.
    TooLarge {
        /// Requested node count.
        n: usize,
        /// The service's exact-enumeration ceiling.
        max: usize,
    },
    /// The admission queue is past its shed ladder: the request was
    /// rejected (or its deadline expired) rather than served late.
    /// Rides the dedicated v6 `Overloaded` frame, never `0x12`.
    Overloaded {
        /// Server's drain-time estimate: retry no sooner than this.
        retry_after_us: u32,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(what) => write!(f, "bad request: {what}"),
            ServiceError::TooLarge { n, max } => write!(
                f,
                "heterogeneous instance with {n} nodes exceeds the exact solver ceiling ({max})"
            ),
            ServiceError::Overloaded { retry_after_us } => {
                write!(f, "server overloaded; retry after {retry_after_us}µs")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// The wire error code for this error.
    pub fn wire_code(&self) -> ServiceErrorCode {
        match self {
            ServiceError::BadRequest(_) => ServiceErrorCode::BadRequest,
            ServiceError::TooLarge { .. } => ServiceErrorCode::TooLarge,
            ServiceError::Overloaded { .. } => ServiceErrorCode::Overloaded,
        }
    }
}

/// Converts the wire objective to the core throughput mode.
pub fn mode_from_wire(obj: WireObjective) -> ThroughputMode {
    match obj {
        WireObjective::Groupput => ThroughputMode::Groupput,
        WireObjective::Anyput => ThroughputMode::Anyput,
    }
}

/// Converts the core throughput mode to the wire objective.
pub fn mode_to_wire(mode: ThroughputMode) -> WireObjective {
    match mode {
        ThroughputMode::Groupput => WireObjective::Groupput,
        ThroughputMode::Anyput => WireObjective::Anyput,
    }
}

impl PolicyRequest {
    /// A homogeneous clique request: `n` nodes at the same params.
    pub fn homogeneous(
        n: usize,
        params: NodeParams,
        sigma: f64,
        objective: ThroughputMode,
        tolerance: f64,
    ) -> Self {
        PolicyRequest {
            budgets_w: vec![params.budget_w; n],
            listen_w: params.listen_w,
            transmit_w: params.transmit_w,
            sigma,
            objective,
            tolerance,
        }
    }

    /// Number of nodes in the instance.
    pub fn num_nodes(&self) -> usize {
        self.budgets_w.len()
    }

    /// The [`NodeParams`] vector in caller order.
    pub fn nodes(&self) -> Vec<NodeParams> {
        self.budgets_w
            .iter()
            .map(|&rho| NodeParams::new(rho, self.listen_w, self.transmit_w))
            .collect()
    }

    /// Validates every field; `Err` carries what failed.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let fin_pos = |v: f64| v > 0.0 && v.is_finite();
        if self.budgets_w.is_empty() {
            return Err(ServiceError::BadRequest("empty budget vector"));
        }
        if self.budgets_w.len() > MAX_WIRE_NODES {
            return Err(ServiceError::BadRequest("node count exceeds wire cap"));
        }
        if !self.budgets_w.iter().all(|&b| fin_pos(b)) {
            return Err(ServiceError::BadRequest("budgets must be positive finite"));
        }
        if !fin_pos(self.listen_w) || !fin_pos(self.transmit_w) {
            return Err(ServiceError::BadRequest(
                "radio powers must be positive finite",
            ));
        }
        if !fin_pos(self.sigma) {
            return Err(ServiceError::BadRequest("sigma must be positive finite"));
        }
        if !fin_pos(self.tolerance) {
            return Err(ServiceError::BadRequest(
                "tolerance must be positive finite",
            ));
        }
        Ok(())
    }

    /// Builds the native request from a wire request (no validation —
    /// call [`PolicyRequest::validate`] before serving).
    pub fn from_wire(w: &WirePolicyRequest) -> Self {
        PolicyRequest {
            budgets_w: w.budgets_w.clone(),
            listen_w: w.listen_w,
            transmit_w: w.transmit_w,
            sigma: w.sigma,
            objective: mode_from_wire(w.objective),
            tolerance: w.tolerance,
        }
    }

    /// Encodes the native request as a wire request with the given id.
    /// The batch correlation id starts at 0 ("not pipelined"); the
    /// pipelined client stamps its own before framing.
    pub fn to_wire(&self, id: u32) -> WirePolicyRequest {
        WirePolicyRequest {
            corr: 0,
            id,
            deadline_us: 0,
            objective: mode_to_wire(self.objective),
            sigma: self.sigma,
            tolerance: self.tolerance,
            listen_w: self.listen_w,
            transmit_w: self.transmit_w,
            budgets_w: self.budgets_w.clone(),
        }
    }
}

impl PolicyResponse {
    /// Rebuilds a native response from its wire form — the remote-
    /// shard dialer's inverse of [`PolicyResponse::to_wire`]. The wire
    /// response does not carry σ (the requester knows it), so the
    /// certificate's σ field is restored from the originating
    /// request; every other field round-trips bit-exactly, which is
    /// what lets a cluster deployment preserve the bit-identical-
    /// response guarantee across process boundaries.
    pub fn from_wire(w: &WirePolicyResponse, sigma: f64) -> Self {
        PolicyResponse {
            policies: w
                .policies
                .iter()
                .map(|p| NodePolicy {
                    listen: p.listen,
                    transmit: p.transmit,
                })
                .collect(),
            throughput: w.throughput,
            tier: w.tier,
            kernel: w.kernel,
            converged: w.converged,
            certificate: AchievabilityGap {
                sigma,
                t_sigma: w.cert_t_sigma,
                oracle: w.cert_oracle,
                dual_upper: w.cert_dual_upper,
                converged: w.converged,
            },
        }
    }

    /// Encodes the native response as a wire response with the given
    /// id.
    pub fn to_wire(&self, id: u32) -> WirePolicyResponse {
        WirePolicyResponse {
            corr: 0,
            id,
            tier: self.tier,
            kernel: self.kernel,
            converged: self.converged,
            throughput: self.throughput,
            cert_t_sigma: self.certificate.t_sigma,
            cert_oracle: self.certificate.oracle,
            cert_dual_upper: self.certificate.dual_upper,
            policies: self
                .policies
                .iter()
                .map(|p| WirePolicy {
                    listen: p.listen,
                    transmit: p.transmit,
                })
                .collect(),
        }
    }
}

/// Encodes a service error as a wire error with the given id.
pub fn error_to_wire(err: &ServiceError, id: u32) -> WirePolicyError {
    WirePolicyError {
        corr: 0,
        id,
        code: err.wire_code(),
        retry_after_us: match err {
            ServiceError::Overloaded { retry_after_us } => *retry_after_us,
            _ => 0,
        },
    }
}
