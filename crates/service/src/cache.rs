//! The exact-match LRU tier.
//!
//! Keys are [`InstanceKey`]s (canonicalized instances, see
//! `econcast_statespace::instance`); values are solved policies in
//! *canonical* (sorted-budget) order, so one entry serves every
//! permutation of the same instance. Implemented as a `HashMap` into a
//! slot arena threaded with an intrusive doubly-linked recency list —
//! `get` and `insert` are O(1), eviction pops the list tail. No
//! external crates, deterministic behaviour (recency order depends
//! only on the call sequence, never on hash iteration order).
//!
//! ## Byte budget
//!
//! Besides the entry-count capacity, the cache can carry an optional
//! **byte budget**: every entry is charged an approximate resident
//! size (slot + key copies + policy-vector heap), and inserts evict
//! from the recency tail until the total fits. The budget is *shared
//! across cache tiers*: `PolicyService` charges resident
//! interpolation grids against the same `max_cache_bytes` pool and
//! narrows the LRU's budget to the remainder
//! ([`LruCache::set_byte_budget`]), so a service's cache footprint is
//! bounded by one number no matter how traffic splits between tiers.
//! Byte-driven evictions are counted separately
//! ([`LruCache::byte_evictions`]) from capacity-driven ones.

use econcast_oracle::AchievabilityGap;
use econcast_proto::service::PolicyKernel;
use econcast_statespace::InstanceKey;
use std::collections::HashMap;

/// A solved policy in canonical (sorted-budget) node order — the unit
/// the exact tier stores and the solve pipeline produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPolicy {
    /// Listen fractions, canonical order.
    pub alpha: Vec<f64>,
    /// Transmit fractions, canonical order.
    pub beta: Vec<f64>,
    /// Expected throughput.
    pub throughput: f64,
    /// Whether the producing solve met its tolerance.
    pub converged: bool,
    /// Which solve kernel produced the entry — carried through the
    /// cache so later exact-tier hits stay attributable (closed form
    /// vs a prior factorized large-N solve vs Gray-code vs grid).
    pub kernel: PolicyKernel,
    /// The certificate computed when the entry was produced.
    pub certificate: AchievabilityGap,
}

impl CachedPolicy {
    /// Approximate heap bytes owned by the policy vectors (the struct
    /// itself is counted by whoever embeds it).
    fn heap_bytes(&self) -> usize {
        8 * (self.alpha.len() + self.beta.len())
    }
}

/// Approximate resident bytes of one cache entry: the arena slot, the
/// two key copies an entry pins (hash-map side and slot side, each
/// with its sorted-budget heap block), and the policy-vector heap.
/// "Approximate" means allocator slack and hash-map table overhead
/// are not modelled — the budget bounds the dominant, per-entry-
/// linear terms, which is what grows without bound under traffic.
fn entry_bytes(key: &InstanceKey, value: &CachedPolicy) -> usize {
    std::mem::size_of::<Slot>()
        + std::mem::size_of::<InstanceKey>()
        + 2 * 8 * key.num_nodes()
        + value.heap_bytes()
}

/// A minimal placeholder key parked in freed slots (one-node budget
/// heap, ~8 bytes) so eviction genuinely releases the victim's
/// allocations. Canonicalized once per process — evictions happen on
/// the insert hot path and must not pay a canonicalization each.
fn scrub_key() -> InstanceKey {
    use econcast_core::ThroughputMode;
    static KEY: std::sync::OnceLock<InstanceKey> = std::sync::OnceLock::new();
    KEY.get_or_init(|| {
        econcast_statespace::CanonicalInstance::new(
            &[1.0],
            1.0,
            1.0,
            1.0,
            ThroughputMode::Groupput,
            1.0,
        )
        .key
    })
    .clone()
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    key: InstanceKey,
    value: CachedPolicy,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU over canonical instance keys, with an optional
/// shared byte budget (see the module docs).
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<InstanceKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
    /// Byte ceiling currently granted to this cache (`None` =
    /// unbounded). `PolicyService` shrinks it as grids claim their
    /// share of the common pool.
    max_bytes: Option<usize>,
    /// Approximate resident bytes of the current entries.
    bytes: usize,
    evictions: u64,
    byte_evictions: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` entries, with no
    /// byte budget.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, None)
    }

    /// Creates a cache bounded by `capacity` entries *and* (when
    /// `Some`) `max_bytes` approximate resident bytes, whichever bites
    /// first.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn with_byte_budget(capacity: usize, max_bytes: Option<usize>) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            max_bytes,
            bytes: 0,
            evictions: 0,
            byte_evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate resident bytes of the current entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The current byte budget (`None` = unbounded).
    pub fn byte_budget(&self) -> Option<usize> {
        self.max_bytes
    }

    /// Re-grants the byte budget, evicting LRU-first until the
    /// resident entries fit — how the service narrows the exact tier's
    /// share of the common pool when a grid build claims bytes.
    pub fn set_byte_budget(&mut self, max_bytes: Option<usize>) {
        self.max_bytes = max_bytes;
        self.enforce_byte_budget();
    }

    /// Entries evicted so far, for any reason (capacity or byte
    /// budget).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The subset of [`evictions`](Self::evictions) forced by the byte
    /// budget rather than the entry-count capacity.
    pub fn byte_evictions(&self) -> u64 {
        self.byte_evictions
    }

    /// Evicts the least recently used entry, returning whether one
    /// existed. The victim slot's heap allocations (policy vectors,
    /// key budgets) are actually released — a freed slot parked on
    /// the free list must not keep the evicted entry's memory
    /// resident, or the byte budget would bound an accounting fiction
    /// instead of the footprint.
    fn evict_tail(&mut self) -> bool {
        let victim = self.tail;
        if victim == NIL {
            return false;
        }
        self.unlink(victim);
        self.map.remove(&self.slots[victim].key);
        self.bytes = self.bytes.saturating_sub(entry_bytes(
            &self.slots[victim].key,
            &self.slots[victim].value,
        ));
        let slot = &mut self.slots[victim];
        slot.key = scrub_key();
        slot.value.alpha = Vec::new();
        slot.value.beta = Vec::new();
        self.free.push(victim);
        self.evictions += 1;
        true
    }

    /// Evicts LRU-first until the resident bytes fit the budget. May
    /// empty the cache entirely when the budget is smaller than a
    /// single entry — a tiny budget bounds memory, it does not
    /// guarantee residency.
    fn enforce_byte_budget(&mut self) {
        let Some(budget) = self.max_bytes else {
            return;
        };
        while self.bytes > budget {
            if !self.evict_tail() {
                break;
            }
            self.byte_evictions += 1;
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recent).
    fn link_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, promoting a hit to most-recently-used.
    pub fn get(&mut self, key: &InstanceKey) -> Option<&CachedPolicy> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Inserts (or refreshes) an entry, evicting least recently used
    /// ones when the entry-count capacity or the byte budget demands
    /// it.
    pub fn insert(&mut self, key: InstanceKey, value: CachedPolicy) {
        if let Some(&i) = self.map.get(&key) {
            // Refresh: re-account the value's share of the bytes.
            self.bytes =
                self.bytes.saturating_sub(self.slots[i].value.heap_bytes()) + value.heap_bytes();
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            self.enforce_byte_budget();
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_tail();
        }
        self.bytes += entry_bytes(&key, &value);
        let slot = if let Some(i) = self.free.pop() {
            self.slots[i].key = key.clone();
            self.slots[i].value = value;
            i
        } else {
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.link_front(slot);
        self.enforce_byte_budget();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::Groupput;
    use econcast_statespace::CanonicalInstance;

    fn key(budget_scale: f64) -> InstanceKey {
        CanonicalInstance::new(&[budget_scale * 1e-6], 5e-4, 5e-4, 0.5, Groupput, 1e-3).key
    }

    fn value(tag: f64) -> CachedPolicy {
        CachedPolicy {
            alpha: vec![tag],
            beta: vec![tag],
            throughput: tag,
            converged: true,
            kernel: PolicyKernel::ClosedForm,
            certificate: AchievabilityGap {
                sigma: 0.5,
                t_sigma: tag,
                oracle: tag,
                dual_upper: tag,
                converged: true,
            },
        }
    }

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1.0), value(1.0));
        lru.insert(key(2.0), value(2.0));
        assert_eq!(lru.len(), 2);
        // Touch key 1 so key 2 becomes LRU.
        assert!(lru.get(&key(1.0)).is_some());
        lru.insert(key(3.0), value(3.0));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 1);
        assert!(lru.get(&key(2.0)).is_none(), "LRU entry evicted");
        assert!(lru.get(&key(1.0)).is_some(), "recently used entry kept");
        assert!(lru.get(&key(3.0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1.0), value(1.0));
        lru.insert(key(2.0), value(2.0));
        lru.insert(key(1.0), value(10.0)); // refresh, key 2 now LRU
        assert_eq!(lru.get(&key(1.0)).unwrap().throughput, 10.0);
        lru.insert(key(3.0), value(3.0));
        assert!(lru.get(&key(2.0)).is_none());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn single_slot_cache_works() {
        let mut lru = LruCache::new(1);
        for i in 1..=5 {
            lru.insert(key(i as f64), value(i as f64));
            assert_eq!(lru.len(), 1);
            assert!(lru.get(&key(i as f64)).is_some());
        }
        assert_eq!(lru.evictions(), 4);
    }

    /// A value whose policy vectors hold `n` nodes (bigger `n`, bigger
    /// entry).
    fn sized_value(tag: f64, n: usize) -> CachedPolicy {
        CachedPolicy {
            alpha: vec![tag; n],
            beta: vec![tag; n],
            ..value(tag)
        }
    }

    #[test]
    fn byte_budget_evicts_lru_first_and_pins_order() {
        // Calibrate: how many bytes does one single-node entry cost?
        let mut probe = LruCache::new(8);
        probe.insert(key(1.0), value(1.0));
        let unit = probe.bytes();
        assert!(unit > 0);

        // Budget for exactly two single-node entries.
        let mut lru = LruCache::with_byte_budget(1024, Some(2 * unit));
        lru.insert(key(1.0), value(1.0));
        lru.insert(key(2.0), value(2.0));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.bytes(), 2 * unit);
        assert_eq!(lru.byte_evictions(), 0);

        // Touch 1 so 2 is the recency tail; the third insert must
        // evict 2 (LRU order), never 1 — the pinned eviction order.
        assert!(lru.get(&key(1.0)).is_some());
        lru.insert(key(3.0), value(3.0));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.byte_evictions(), 1);
        assert_eq!(lru.evictions(), 1, "byte evictions count as evictions");
        assert!(lru.get(&key(2.0)).is_none(), "tail evicted first");
        assert!(lru.get(&key(1.0)).is_some());
        assert!(lru.get(&key(3.0)).is_some());

        // A single oversized entry (≈ 3 units of policy heap alone)
        // sweeps every smaller entry out, oldest first, and then —
        // still over budget alone — evicts itself: the budget is a
        // bound, not a residency guarantee.
        lru.insert(key(4.0), sized_value(4.0, 400));
        assert_eq!(lru.len(), 0, "oversized entry cannot reside");
        assert_eq!(lru.bytes(), 0);
        assert_eq!(lru.byte_evictions(), 4);

        // Narrowing the budget evicts immediately, tail first.
        let mut lru = LruCache::with_byte_budget(1024, Some(3 * unit));
        for k in 1..=3 {
            lru.insert(key(k as f64), value(k as f64));
        }
        lru.set_byte_budget(Some(unit));
        assert_eq!(lru.len(), 1);
        assert!(lru.get(&key(3.0)).is_some(), "most recent survives");
        assert_eq!(lru.byte_evictions(), 2);
    }

    #[test]
    fn refresh_reaccounts_bytes() {
        let mut lru = LruCache::new(4);
        lru.insert(key(1.0), value(1.0));
        let small = lru.bytes();
        lru.insert(key(1.0), sized_value(1.0, 64));
        assert!(lru.bytes() > small, "bigger value re-accounted");
        lru.insert(key(1.0), value(1.0));
        assert_eq!(lru.bytes(), small, "shrinking back restores the sum");
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn churn_preserves_linkage() {
        // Exercise unlink/link paths across a longer mixed workload.
        let mut lru = LruCache::new(4);
        for round in 0..50usize {
            let k = (round % 7) as f64 + 1.0;
            if round % 3 == 0 {
                let _ = lru.get(&key(k));
            } else {
                lru.insert(key(k), value(k));
            }
            assert!(lru.len() <= 4);
        }
        // The four most recently inserted/touched keys resolve.
        let mut hits = 0;
        for k in 1..=7 {
            if lru.get(&key(k as f64)).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 4);
    }
}
