//! Tier-contract property tests: whatever tier answers, the served
//! policy must match a fresh `P4Solver` solve within the tolerance
//! tier's contract, and repeated serving must be bit-stable.

use econcast_core::{NodeParams, ThroughputMode};
use econcast_service::{PolicyRequest, PolicyService, ServedTier, ServiceConfig};
use econcast_statespace::{quantize_tolerance, solve_p4, P4Options};
use proptest::prelude::*;

const L: f64 = 500e-6;
const X: f64 = 450e-6;

fn service() -> PolicyService {
    PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    })
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-300)
}

fn mode_of(bit: bool) -> ThroughputMode {
    if bit {
        ThroughputMode::Anyput
    } else {
        ThroughputMode::Groupput
    }
}

proptest! {
    /// Homogeneous requests are served by the grid or closed-form tier
    /// (never the enumeration solver), and the answer matches a fresh
    /// exact `P4Solver` solve within the tolerance tier.
    #[test]
    fn homogeneous_tiers_match_fresh_solver(
        n in 2usize..9,
        rho_uw in 2.0f64..100.0,
        sigma in 0.25f64..0.75,
        anyput in any::<bool>(),
        tol in 1e-3f64..1e-1,
    ) {
        let mode = mode_of(anyput);
        let params = NodeParams::new(rho_uw * 1e-6, L, X);
        let req = PolicyRequest::homogeneous(n, params, sigma, mode, tol);
        let tier_floor = quantize_tolerance(tol);

        let mut svc = service();
        let resp = svc.serve(&req).unwrap();
        prop_assert!(matches!(resp.tier, ServedTier::Grid | ServedTier::ClosedForm));
        prop_assert_eq!(svc.stats().solver_solves, 0);

        let fresh = solve_p4(&vec![params; n], sigma, mode, P4Options::default());
        for p in &resp.policies {
            prop_assert!(
                rel(p.listen, fresh.alpha[0]) <= tier_floor,
                "alpha: served {} vs fresh {} (tier {})",
                p.listen, fresh.alpha[0], tier_floor
            );
            prop_assert!(
                rel(p.transmit, fresh.beta[0]) <= tier_floor,
                "beta: served {} vs fresh {} (tier {})",
                p.transmit, fresh.beta[0], tier_floor
            );
        }
        prop_assert!(rel(resp.throughput, fresh.throughput) <= tier_floor);
        // Certificate sandwich.
        let c = &resp.certificate;
        prop_assert!(c.t_sigma <= c.oracle * (1.0 + 1e-9));
        prop_assert!(c.oracle <= c.dual_upper * (1.0 + 1e-9));
    }

    /// Heterogeneous requests run the exact solver at the tier's
    /// tolerance; the response must be the fresh solve of the sorted
    /// instance, rotated back — bit-identical, not just close.
    #[test]
    fn solver_tier_is_the_fresh_solve_in_caller_order(
        seeds in proptest::collection::vec(1.0f64..50.0, 2..6),
        sigma in 0.3f64..0.7,
        anyput in any::<bool>(),
    ) {
        let mode = mode_of(anyput);
        let budgets: Vec<f64> = seeds.iter().map(|s| s * 1e-6).collect();
        let req = PolicyRequest {
            budgets_w: budgets.clone(),
            listen_w: L,
            transmit_w: X,
            sigma,
            objective: mode,
            tolerance: 1e-3,
        };
        let mut svc = service();
        let resp = svc.serve(&req).unwrap();
        // (All-equal draws would take a homogeneous tier instead.)
        if resp.tier != ServedTier::Solver {
            return Ok(());
        }

        let mut sorted = budgets.clone();
        sorted.sort_by(f64::total_cmp);
        let nodes: Vec<NodeParams> =
            sorted.iter().map(|&r| NodeParams::new(r, L, X)).collect();
        let opts = P4Options {
            max_iters: 30_000,
            tol: quantize_tolerance(1e-3),
            ..P4Options::default()
        };
        let fresh = solve_p4(&nodes, sigma, mode, opts);

        for (i, &rho) in budgets.iter().enumerate() {
            // Position of this caller budget in the sorted instance
            // (ties broken by caller order, matching canonicalization).
            let k = sorted
                .iter()
                .enumerate()
                .position(|(k, &r)| {
                    r == rho
                        && budgets[..i].iter().filter(|&&b| b == rho).count()
                            == sorted[..k].iter().filter(|&&b| b == rho).count()
                })
                .unwrap();
            prop_assert_eq!(resp.policies[i].listen.to_bits(), fresh.alpha[k].to_bits());
            prop_assert_eq!(resp.policies[i].transmit.to_bits(), fresh.beta[k].to_bits());
        }
        prop_assert_eq!(resp.throughput.to_bits(), fresh.throughput.to_bits());
    }

    /// Serving the same request twice: the second answer comes from
    /// the exact tier and is bit-identical to the first.
    #[test]
    fn exact_tier_replays_bitwise(
        seeds in proptest::collection::vec(1.0f64..50.0, 2..5),
        sigma in 0.3f64..0.7,
    ) {
        let budgets: Vec<f64> = seeds.iter().map(|s| s * 1e-6).collect();
        let req = PolicyRequest {
            budgets_w: budgets,
            listen_w: L,
            transmit_w: X,
            sigma,
            objective: ThroughputMode::Groupput,
            tolerance: 1e-2,
        };
        let mut svc = service();
        let first = svc.serve(&req).unwrap();
        let before = svc.stats();
        let second = svc.serve(&req).unwrap();
        let after = svc.stats();
        prop_assert_eq!(second.tier, ServedTier::Exact);
        prop_assert_eq!(after.exact_hits, before.exact_hits + 1);
        prop_assert_eq!(after.solver_solves, before.solver_solves);
        prop_assert_eq!(after.closed_form_hits, before.closed_form_hits);
        for (a, b) in first.policies.iter().zip(&second.policies) {
            prop_assert_eq!(a.listen.to_bits(), b.listen.to_bits());
            prop_assert_eq!(a.transmit.to_bits(), b.transmit.to_bits());
        }
        prop_assert_eq!(first.throughput.to_bits(), second.throughput.to_bits());
    }
}

/// The lifted instance-size ceiling: heterogeneous requests at
/// N ∈ {24, 32, 64} — far beyond the old 2^N enumeration wall — are
/// served by the factorized kernel, cached, and replayed from the
/// exact tier with the split hit counter attributing each hit to the
/// kernel that produced the entry.
#[test]
fn large_n_requests_serve_and_cache_via_the_factorized_kernel() {
    use econcast_service::PolicyKernel;

    let mut svc = service();
    let mut expected_factorized_hits = 0;
    for (n, mode) in [
        (24usize, ThroughputMode::Groupput),
        (32, ThroughputMode::Anyput),
        (64, ThroughputMode::Groupput),
    ] {
        let req = PolicyRequest {
            budgets_w: (0..n).map(|i| (2.0 + 1.5 * i as f64) * 1e-6).collect(),
            listen_w: L,
            transmit_w: X,
            sigma: 0.5,
            objective: mode,
            tolerance: 1e-2,
        };
        let cold = svc.serve(&req).unwrap();
        assert_eq!(cold.tier, ServedTier::Solver, "N={n} cold tier");
        assert_eq!(cold.kernel, PolicyKernel::Factorized, "N={n} kernel");
        assert!(cold.converged, "N={n} did not converge");
        assert_eq!(cold.policies.len(), n);
        for p in &cold.policies {
            assert!(p.listen >= 0.0 && p.listen <= 1.0);
            assert!(p.transmit >= 0.0 && p.transmit <= 1.0);
        }
        // Certificate sandwich holds at sizes enumeration cannot reach.
        let c = &cold.certificate;
        assert!(c.t_sigma <= c.oracle * (1.0 + 1e-9), "N={n} sandwich");
        assert!(c.oracle <= c.dual_upper * (1.0 + 1e-9), "N={n} sandwich");

        let warm = svc.serve(&req).unwrap();
        expected_factorized_hits += 1;
        assert_eq!(warm.tier, ServedTier::Exact, "N={n} warm tier");
        assert_eq!(
            warm.kernel,
            PolicyKernel::Factorized,
            "N={n}: exact-tier hits must keep the producing kernel"
        );
        for (a, b) in cold.policies.iter().zip(&warm.policies) {
            assert_eq!(a.listen.to_bits(), b.listen.to_bits());
            assert_eq!(a.transmit.to_bits(), b.transmit.to_bits());
        }
        assert_eq!(
            svc.stats().exact_hits_factorized,
            expected_factorized_hits,
            "N={n}: factorized exact hits"
        );
        assert_eq!(svc.stats().exact_hits_closed_form, 0);
    }

    // A homogeneous replay lands in the same kind of LRU but
    // attributes to the closed form — the two counters split
    // `exact_hits` by producing kernel. (Grid disabled so the request
    // reaches the closed-form tier, whose entries do get cached.)
    let mut svc2 = PolicyService::new(ServiceConfig {
        workers: Some(1),
        grid: None,
        ..ServiceConfig::default()
    });
    let homog = PolicyRequest::homogeneous(
        32,
        NodeParams::new(10e-6, L, X),
        0.5,
        ThroughputMode::Groupput,
        1e-2,
    );
    let first = svc2.serve(&homog).unwrap();
    assert_eq!(first.tier, ServedTier::ClosedForm);
    assert_eq!(first.kernel, PolicyKernel::ClosedForm);
    let replay = svc2.serve(&homog).unwrap();
    assert_eq!(replay.tier, ServedTier::Exact);
    assert_eq!(replay.kernel, PolicyKernel::ClosedForm);
    assert_eq!(svc2.stats().exact_hits_closed_form, 1);
    assert_eq!(svc2.stats().exact_hits_factorized, 0);

    let s = svc.stats();
    assert_eq!(s.exact_hits_factorized, expected_factorized_hits);
    assert_eq!(s.exact_hits_closed_form, 0);
    assert!(s.exact_hits_closed_form + s.exact_hits_factorized <= s.exact_hits);
}
