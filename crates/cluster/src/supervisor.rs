//! Spawning and monitoring backend `policy_server` processes.
//!
//! A [`Supervisor`] launches `policy_backend` child processes (the
//! crate's binary: a stock sharded `PolicyServer` behind a tiny CLI),
//! learns each one's ephemeral listen address from its
//! `LISTENING <addr>` stdout line, and monitors liveness. Children
//! hold a stdin pipe to the supervisor and exit on EOF, so even a
//! supervisor that dies without running destructors does not leak
//! backend processes.
//!
//! The supervisor is deliberately mechanism, not policy: it can
//! spawn, observe ([`Supervisor::is_alive`]), kill, and
//! [`respawn`](Supervisor::respawn) — the *decision* to replace a
//! backend belongs to whoever watches the router's health state
//! (tests, the `policy_cluster` example, an operator).

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Options applied to every spawned backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// `--shards` per backend process.
    pub backend_shards: usize,
    /// `--workers` per backend shard service (`None` = backend
    /// default).
    pub workers: Option<usize>,
    /// How long a freshly spawned backend may take to print its
    /// readiness line before the spawn is declared failed and the
    /// child killed — a wedged replacement must not hang the
    /// supervisor (and whoever drives `respawn`) forever.
    pub startup_timeout: Duration,
    /// Extra flags appended to every backend's command line (applied
    /// to respawns too) — how the fault-injection tests spawn
    /// deliberately crash-looping backends (`--crash-after-ms`).
    pub extra_args: Vec<String>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            backend_shards: 2,
            workers: None,
            startup_timeout: Duration::from_secs(10),
            extra_args: Vec::new(),
        }
    }
}

/// One supervised backend process.
#[derive(Debug)]
struct Backend {
    child: Child,
    addr: SocketAddr,
}

/// Owns a fleet of backend processes; kills them on drop.
#[derive(Debug)]
pub struct Supervisor {
    binary: PathBuf,
    cfg: SupervisorConfig,
    backends: Vec<Backend>,
}

impl Supervisor {
    /// Spawns `count` backend processes from `binary` (the
    /// `policy_backend` executable) and waits for each to report its
    /// listen address.
    pub fn spawn(binary: &Path, count: usize, cfg: SupervisorConfig) -> std::io::Result<Self> {
        let mut sup = Supervisor {
            binary: binary.to_path_buf(),
            cfg,
            backends: Vec::with_capacity(count),
        };
        for _ in 0..count {
            let backend = sup.spawn_one()?;
            sup.backends.push(backend);
        }
        Ok(sup)
    }

    fn spawn_one(&self) -> std::io::Result<Backend> {
        let mut cmd = Command::new(&self.binary);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--shards")
            .arg(self.cfg.backend_shards.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(workers) = self.cfg.workers {
            cmd.arg("--workers").arg(workers.to_string());
        }
        cmd.args(&self.cfg.extra_args);
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");

        // Await the readiness line on a helper thread so a backend
        // that binds-then-wedges (or a wrong binary that prints
        // nothing) surfaces as a timed-out spawn error instead of
        // blocking the supervisor forever. The thread exits after its
        // one send — on timeout, killing the child closes the pipe
        // and unblocks it.
        let (tx, rx) = std::sync::mpsc::channel::<Result<SocketAddr, String>>();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let line = match line {
                    Ok(line) => line,
                    Err(e) => {
                        let _ = tx.send(Err(format!("reading backend stdout: {e}")));
                        return;
                    }
                };
                if let Some(rest) = line.strip_prefix("LISTENING ") {
                    let _ = tx.send(
                        rest.trim()
                            .parse::<SocketAddr>()
                            .map_err(|_| format!("unparsable backend address `{rest}`")),
                    );
                    return;
                }
            }
            let _ = tx.send(Err("backend exited before reporting its address".into()));
        });

        let outcome = match rx.recv_timeout(self.cfg.startup_timeout) {
            Ok(Ok(addr)) => return Ok(Backend { child, addr }),
            Ok(Err(msg)) => msg,
            Err(_) => format!(
                "backend did not report readiness within {:?}",
                self.cfg.startup_timeout
            ),
        };
        let _ = child.kill();
        let _ = child.wait();
        Err(std::io::Error::other(outcome))
    }

    /// Number of supervised backends (alive or not).
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the supervisor manages no backends.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Backend `i`'s listen address.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.backends[i].addr
    }

    /// Every backend's listen address, in spawn order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.backends.iter().map(|b| b.addr).collect()
    }

    /// Whether backend `i`'s process is still running.
    pub fn is_alive(&mut self, i: usize) -> bool {
        matches!(self.backends[i].child.try_wait(), Ok(None))
    }

    /// Backends currently running.
    pub fn alive_count(&mut self) -> usize {
        (0..self.backends.len())
            .filter(|&i| self.is_alive(i))
            .count()
    }

    /// Kills backend `i` and reaps it. Idempotent.
    pub fn kill(&mut self, i: usize) -> std::io::Result<()> {
        let backend = &mut self.backends[i];
        match backend.child.kill() {
            Ok(()) => {
                backend.child.wait()?;
                Ok(())
            }
            // Already exited: reap and move on.
            Err(_) => {
                let _ = backend.child.try_wait();
                Ok(())
            }
        }
    }

    /// Replaces backend `i` with a freshly spawned process (new
    /// ephemeral port), killing the old one if needed. Returns the
    /// replacement's address — feed it to
    /// `ClusterRouter::retarget_slot` to bring the slot back remote.
    pub fn respawn(&mut self, i: usize) -> std::io::Result<SocketAddr> {
        self.kill(i)?;
        let backend = self.spawn_one()?;
        let addr = backend.addr;
        self.backends[i] = backend;
        Ok(addr)
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for backend in &mut self.backends {
            let _ = backend.child.kill();
            let _ = backend.child.wait();
        }
    }
}

/// Locates the `policy_backend` executable for contexts without
/// Cargo's `CARGO_BIN_EXE_*` injection (examples, ad-hoc runs):
/// honors `ECONCAST_BACKEND_BIN`, then probes next to the current
/// executable and one directory up (`target/<profile>/examples/foo`
/// and `target/<profile>/deps/foo` both sit one level below the
/// binaries).
pub fn default_backend_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("ECONCAST_BACKEND_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("policy_backend{}", std::env::consts::EXE_SUFFIX);
    let dir = exe.parent()?;
    [dir.join(&name), dir.parent()?.join(&name)]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn spawn_fails_cleanly_when_backend_never_reports() {
        // A binary that exits without printing LISTENING must surface
        // as a prompt spawn error (the readiness reader hits EOF), not
        // a hang — the same channel path the startup timeout rides.
        let err = Supervisor::spawn(Path::new("/bin/true"), 1, SupervisorConfig::default())
            .expect_err("no readiness line");
        assert!(
            err.to_string().contains("before reporting"),
            "unexpected error: {err}"
        );
    }
}
