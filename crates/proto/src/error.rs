//! Decoding errors.

use std::fmt;

/// Why a byte buffer failed to decode into a [`crate::Frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header requires.
    Truncated {
        /// Bytes needed (lower bound).
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The leading type octet is not a known frame type.
    UnknownFrameType(u8),
    /// The trailing CRC-16 did not match.
    BadChecksum,
    /// A length/count field is inconsistent with the buffer size.
    MalformedLength,
    /// A service message carried a wire-format version this build does
    /// not speak (see [`crate::service::WIRE_VERSION`]).
    UnsupportedVersion(u8),
    /// A field value is outside its legal domain (e.g. an objective
    /// discriminant that is neither groupput nor anyput, or a
    /// non-finite float where a finite one is required).
    InvalidField(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            DecodeError::UnknownFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            DecodeError::BadChecksum => write!(f, "frame checksum mismatch"),
            DecodeError::MalformedLength => write!(f, "length field inconsistent with buffer"),
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported service wire version {v}")
            }
            DecodeError::InvalidField(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}
