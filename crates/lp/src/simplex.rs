//! Two-phase primal simplex with Bland's anti-cycling rule.
//!
//! Layout of the working tableau (one extra column for the RHS):
//!
//! ```text
//! rows 0..m        constraint rows (RHS normalized non-negative)
//! row  m           user objective row   (reduced costs, maximization)
//! row  m+1         phase-1 objective row (minimize Σ artificials)
//! cols 0..n        structural variables
//! cols n..n+s      slack / surplus variables
//! cols n+s..n+s+a  artificial variables
//! col  last        right-hand side
//! ```
//!
//! Keeping both objective rows inside the tableau means every pivot
//! updates them for free, so switching from phase 1 to phase 2 is just a
//! matter of which row drives the entering-column choice.

use crate::error::LpError;
use crate::problem::{Problem, Relation, Solution};
use crate::tableau::Tableau;

/// Tolerance used for reduced-cost signs, the ratio test, and the
/// phase-1 feasibility check. The oracle LPs are well scaled (powers in
/// watts, fractions of time in `[0, 1]`), so a fixed tolerance is fine.
const EPS: f64 = 1e-9;

/// Marker for "no basic variable assigned" while building the basis.
const NO_VAR: usize = usize::MAX;

pub(crate) fn solve(problem: &Problem) -> Result<Solution, LpError> {
    let n = problem.num_vars();
    let m = problem.num_constraints();

    // --- Count auxiliary columns. -------------------------------------
    // Every row gets one slack/surplus except Eq rows; Ge and Eq rows
    // get one artificial each. A Le row with negative RHS is normalized
    // into a Ge row first (and vice versa), so classify after
    // normalization.
    #[derive(Clone, Copy, PartialEq)]
    enum RowKind {
        Le,
        Ge,
        Eq,
    }
    let mut kinds = Vec::with_capacity(m);
    let mut rhs = Vec::with_capacity(m);
    let mut sign = Vec::with_capacity(m);
    for c in problem.constraints() {
        let (k, s, b) = if c.rhs < 0.0 {
            // Multiply the row by -1 so the RHS becomes non-negative.
            let flipped = match c.relation {
                Relation::Le => RowKind::Ge,
                Relation::Ge => RowKind::Le,
                Relation::Eq => RowKind::Eq,
            };
            (flipped, -1.0, -c.rhs)
        } else {
            let k = match c.relation {
                Relation::Le => RowKind::Le,
                Relation::Ge => RowKind::Ge,
                Relation::Eq => RowKind::Eq,
            };
            (k, 1.0, c.rhs)
        };
        kinds.push(k);
        sign.push(s);
        rhs.push(b);
    }
    let num_slack = kinds.iter().filter(|k| **k != RowKind::Eq).count();
    let num_art = kinds.iter().filter(|k| **k != RowKind::Le).count();
    let cols = n + num_slack + num_art + 1;
    let rhs_col = cols - 1;
    let art_start = n + num_slack;

    let mut t = Tableau::zeros(m + 2, cols);
    let obj_row = m;
    let w_row = m + 1;

    // --- Fill constraint rows and the basis. ---------------------------
    let mut basis = vec![NO_VAR; m];
    let mut next_slack = n;
    let mut next_art = art_start;
    for (r, c) in problem.constraints().iter().enumerate() {
        for (j, &a) in c.coeffs.iter().enumerate() {
            t.set(r, j, sign[r] * a);
        }
        t.set(r, rhs_col, rhs[r]);
        match kinds[r] {
            RowKind::Le => {
                t.set(r, next_slack, 1.0);
                basis[r] = next_slack;
                next_slack += 1;
            }
            RowKind::Ge => {
                t.set(r, next_slack, -1.0); // surplus
                next_slack += 1;
                t.set(r, next_art, 1.0);
                basis[r] = next_art;
                next_art += 1;
            }
            RowKind::Eq => {
                t.set(r, next_art, 1.0);
                basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    // --- Objective rows. ------------------------------------------------
    // User objective (maximization): z - c·x = 0  →  row = [-c | 0].
    for (j, &cj) in problem.objective_internal().iter().enumerate() {
        t.set(obj_row, j, -cj);
    }
    // Phase-1 objective: maximize -Σ artificials → w-row starts with +1
    // on artificial columns, then subtract each artificial-basic row so
    // basic columns have zero reduced cost.
    if num_art > 0 {
        for j in art_start..art_start + num_art {
            t.set(w_row, j, 1.0);
        }
        for r in 0..m {
            if basis[r] >= art_start {
                for j in 0..cols {
                    let v = t.get(w_row, j) - t.get(r, j);
                    t.set(w_row, j, v);
                }
            }
        }
    }

    let iter_limit = 10_000 + 200 * (m + cols);

    // --- Phase 1. --------------------------------------------------------
    if num_art > 0 {
        run_phase(&mut t, &mut basis, w_row, art_start, true, iter_limit)?;
        // Σ artificials = -(w-row rhs); feasible iff ≈ 0.
        let w_val = t.get(w_row, rhs_col);
        if w_val < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial that is still basic (at level 0) out of
        // the basis where possible so phase 2 never pivots on one.
        for r in 0..m {
            if basis[r] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| t.get(r, j).abs() > EPS) {
                    t.pivot(r, j);
                    basis[r] = j;
                }
                // If no structural/slack entry is nonzero the row is
                // redundant; it stays with its artificial basic at 0 and
                // can never affect the optimum.
            }
        }
    }

    // --- Phase 2. ----------------------------------------------------------
    run_phase(&mut t, &mut basis, obj_row, art_start, false, iter_limit)?;

    // --- Extract the solution. ----------------------------------------------
    let mut x = vec![0.0; n];
    for (r, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t.get(r, rhs_col);
        }
    }
    // Clean tiny negative noise from degenerate pivots.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-7 {
            *v = 0.0;
        }
    }
    let objective = problem
        .objective_internal()
        .iter()
        .zip(&x)
        .map(|(c, v)| c * v)
        .sum();
    Ok(Solution { objective, x })
}

/// Runs simplex pivots driven by `price_row` until optimality.
///
/// `allow_artificial` decides whether columns `≥ art_start` may enter
/// the basis (true only in phase 1, where they are already basic and the
/// question is moot, but kept explicit for clarity).
fn run_phase(
    t: &mut Tableau,
    basis: &mut [usize],
    price_row: usize,
    art_start: usize,
    allow_artificial: bool,
    iter_limit: usize,
) -> Result<(), LpError> {
    let m = basis.len();
    let cols = t.cols();
    let rhs_col = cols - 1;
    let col_limit = if allow_artificial { rhs_col } else { art_start };

    for _ in 0..iter_limit {
        // Bland's rule: entering column = smallest index with a
        // strictly negative reduced cost.
        let entering = (0..col_limit).find(|&j| t.get(price_row, j) < -EPS);
        let Some(j) = entering else {
            return Ok(()); // optimal for this phase
        };

        // Ratio test; ties broken by the smallest basic-variable index
        // (the second half of Bland's rule).
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = t.get(r, j);
            if a > EPS {
                let ratio = t.get(r, rhs_col) / a;
                match leave {
                    None => leave = Some((r, ratio)),
                    Some((br, best)) => {
                        if ratio < best - EPS || (ratio < best + EPS && basis[r] < basis[br]) {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, _)) = leave else {
            return Err(LpError::Unbounded);
        };
        t.pivot(r, j);
        basis[r] = j;
    }
    Err(LpError::IterationLimit(iter_limit))
}
