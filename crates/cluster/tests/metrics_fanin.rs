//! Cluster-wide v7 metrics fan-in pinned against ground truth: a
//! `MetricsRequest` through the front must equal the merge of direct
//! per-backend scrapes plus the front process's own plane — including
//! after a mid-run backend kill — and a respawned backend restarting
//! its counters at zero must never drag the front's aggregate
//! backwards (the per-slot re-base carries the dead incarnation's
//! totals forward).
//!
//! One test in its own binary: the expected sums are computed from
//! the front process's global hub, which must stay quiescent between
//! the aggregate scrape and the ground-truth scrapes.

use econcast_cluster::{
    ClusterConfig, ClusterFront, ClusterRouter, FrontConfig, RemoteConfig, SlotSpec, Supervisor,
    SupervisorConfig,
};
use econcast_metrics::{
    MetricsSnapshot, CTR_REQUESTS, GAUGE_LIVE_BACKENDS, GAUGE_LRU_ENTRIES, GAUGE_QUEUE_DEPTH,
    GAUGE_SATURATION_OPEN,
};
use econcast_service::workload::mixed_batch;
use econcast_service::PolicyClient;
use std::net::SocketAddr;
use std::path::Path;
use std::time::Duration;

/// The backend executable Cargo built for this crate's tests.
fn backend_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_policy_backend"))
}

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        remote: RemoteConfig {
            dial_retries: 2,
            // One failure marks a backend down and it stays down until
            // explicitly retargeted — no reprobe racing the assertions.
            unhealthy_after: 1,
            reprobe_after: Duration::from_secs(3600),
            ..RemoteConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// Ground truth: Σ direct backend scrapes + the front process's own
/// plane (local slots, fallback solver, front serve path, ops events).
fn expected_sum(addrs: &[SocketAddr]) -> MetricsSnapshot {
    let mut sum = econcast_metrics::snapshot();
    for &addr in addrs {
        let direct = PolicyClient::connect(addr, 1)
            .expect("connect backend")
            .metrics()
            .expect("backend scrape");
        sum.merge(&direct);
    }
    sum
}

#[test]
fn metrics_fan_in_equals_backend_sum_and_survives_kill_and_respawn() {
    let batch = mixed_batch(64);
    let mut sup =
        Supervisor::spawn(backend_bin(), 2, SupervisorConfig::default()).expect("spawn backends");
    let slots: Vec<SlotSpec> = sup.addrs().into_iter().map(SlotSpec::Remote).collect();
    let front = ClusterFront::bind(
        "127.0.0.1:0",
        ClusterRouter::new(&slots, cluster_cfg()),
        FrontConfig::default(),
    )
    .expect("bind front")
    .spawn();
    let mut client = PolicyClient::connect(front.addr(), 64).expect("connect");
    // Serve the batch twice: the doomed backend's totals must end up
    // strictly above anything its replacement can accumulate from one
    // re-serve, so the counter reset is an observable decrease (a
    // replacement that exactly re-earns its predecessor's totals is
    // indistinguishable from no restart — and needs no re-basing).
    for _ in 0..2 {
        let out = client.serve_batch(&batch).expect("serve");
        assert!(out.iter().all(Result::is_ok));
    }

    // 1. Fan-in == Σ backends + front-local: counters and histograms
    // exactly; the cluster gauges are the front's own overlay.
    let aggregate = client.metrics().expect("front scrape");
    let expected = expected_sum(&sup.addrs());
    assert_eq!(aggregate.counters, expected.counters, "counter fan-in");
    assert_eq!(aggregate.hists, expected.hists, "histogram fan-in");
    assert_eq!(aggregate.counters[CTR_REQUESTS], 2 * batch.len() as u64);
    assert_eq!(
        aggregate.gauge(GAUGE_LRU_ENTRIES),
        expected.gauge(GAUGE_LRU_ENTRIES),
        "idle fallback adds no LRU residency"
    );
    assert_eq!(aggregate.gauge(GAUGE_QUEUE_DEPTH), 0, "quiescent scrape");
    assert_eq!(aggregate.gauge(GAUGE_LIVE_BACKENDS), 2);
    assert_eq!(aggregate.gauge(GAUGE_SATURATION_OPEN), 0);

    // What the doomed incarnation last reported — the totals the
    // re-base must carry forward after the heal.
    let dead = PolicyClient::connect(sup.addr(0), 1)
        .expect("connect backend 0")
        .metrics()
        .expect("scrape backend 0");

    // 2. Mid-run kill: backend 0 dies, the next chunk fails over at
    // the front, and the fan-in still equals what the cluster can
    // currently see (the survivor plus the front's own plane, which
    // now includes the failover re-serves).
    sup.kill(0).expect("kill backend 0");
    let out = client
        .serve_batch(&batch[..32])
        .expect("serve through the kill");
    assert!(out.iter().all(Result::is_ok));
    let after_kill = client.metrics().expect("front scrape after kill");
    let expected = expected_sum(&sup.addrs()[1..]);
    assert_eq!(
        after_kill.counters, expected.counters,
        "fan-in after the kill"
    );
    assert_eq!(after_kill.hists, expected.hists);
    assert_eq!(
        after_kill.gauge(GAUGE_LIVE_BACKENDS),
        1,
        "slot 0 marked down"
    );

    // 3. Respawn: the replacement restarts at zero. The per-slot
    // re-base folds the dead incarnation's last-seen totals into the
    // slot's base, so no aggregate counter ever moves backwards
    // across the heal.
    let fresh = sup.respawn(0).expect("respawn backend 0");
    {
        let router = front.router();
        let mut guard = router.lock().unwrap();
        assert!(guard.retarget_slot(0, fresh));
    }
    let out = client.serve_batch(&batch).expect("serve after respawn");
    assert!(out.iter().all(Result::is_ok));
    let healed = client.metrics().expect("front scrape after respawn");
    for (i, (&now, &before)) in healed.counters.iter().zip(&aggregate.counters).enumerate() {
        assert!(
            now >= before,
            "counter {i} went backwards across the respawn: {now} < {before}"
        );
    }
    // And the re-based aggregate is exact, not merely monotone: Σ live
    // scrapes + front-local + the dead incarnation's carried totals
    // (counters and histograms only — a dead process holds no live
    // gauge state).
    let mut expected = expected_sum(&sup.addrs());
    let mut carried = dead.clone();
    for gauge in &mut carried.gauges {
        gauge.1 = 0;
    }
    expected.merge(&carried);
    assert_eq!(
        healed.counters, expected.counters,
        "re-based counter fan-in"
    );
    assert_eq!(healed.hists, expected.hists, "re-based histogram fan-in");
    assert_eq!(healed.gauge(GAUGE_LIVE_BACKENDS), 2, "slot 0 healthy again");

    drop(client);
    front.shutdown();
}
