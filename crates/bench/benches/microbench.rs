//! Criterion micro-benchmarks for the computational kernels.
//!
//! These cover the pieces whose cost governs experiment wall-clock:
//! the simplex oracle LPs, state-space enumeration, Gibbs summaries
//! (the inner loop of the (P4) solver), the homogeneous fast path, and
//! the simulator event loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use econcast_core::{NodeParams, ProtocolConfig, ThroughputMode, Topology};
use econcast_oracle::{non_clique_groupput_bounds, oracle_anyput, oracle_groupput};
use econcast_sim::{SimConfig, Simulator};
use econcast_statespace::{
    gibbs::{summarize, GibbsParams},
    HomogeneousP4, StateSpace,
};

fn params() -> NodeParams {
    NodeParams::from_microwatts(10.0, 500.0, 500.0)
}

fn bench_oracles(c: &mut Criterion) {
    let nodes10 = vec![params(); 10];
    c.bench_function("oracle_groupput_p2_n10", |b| {
        b.iter(|| oracle_groupput(black_box(&nodes10)))
    });
    c.bench_function("oracle_anyput_p3_n10", |b| {
        b.iter(|| oracle_anyput(black_box(&nodes10)))
    });
    let grid = Topology::square_grid(7);
    let nodes49 = vec![params(); 49];
    c.bench_function("non_clique_bounds_grid7x7", |b| {
        b.iter(|| non_clique_groupput_bounds(black_box(&nodes49), black_box(&grid)))
    });
}

fn bench_statespace(c: &mut Criterion) {
    c.bench_function("statespace_enumerate_n10", |b| {
        b.iter(|| StateSpace::new(10).iter().count())
    });
    let nodes = vec![params(); 10];
    let eta = vec![3000.0; 10];
    c.bench_function("gibbs_summary_n10", |b| {
        b.iter(|| {
            summarize(&GibbsParams {
                nodes: black_box(&nodes),
                eta: black_box(&eta),
                sigma: 0.5,
                mode: ThroughputMode::Groupput,
            })
        })
    });
    c.bench_function("homogeneous_p4_bisection_n50", |b| {
        b.iter(|| {
            HomogeneousP4::new(50, params(), 0.5, ThroughputMode::Groupput)
                .solve()
                .throughput
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator_clique5_50k_packets", |b| {
        b.iter(|| {
            let cfg = SimConfig::ideal_clique(
                5,
                params(),
                ProtocolConfig::capture_groupput(0.5),
                50_000.0,
                42,
            );
            Simulator::new(cfg).expect("valid").run().groupput
        })
    });
    c.bench_function("simulator_grid5x5_20k_packets", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::ideal_clique(
                25,
                params(),
                ProtocolConfig::capture_groupput(0.5),
                20_000.0,
                42,
            );
            cfg.topology = Topology::square_grid(5);
            Simulator::new(cfg).expect("valid").run().groupput
        })
    });
}

criterion_group!(benches, bench_oracles, bench_statespace, bench_simulator);
criterion_main!(benches);
