//! The (P4) achievable-throughput solver (Section VI, Algorithm 1).
//!
//! (P4) adds an entropy regularizer to the oracle LP (P1):
//!
//! ```text
//! max_π  Σ_w π_w T_w − σ Σ_w π_w log π_w
//! s.t.   α_i L_i + β_i X_i ≤ ρ_i   ∀i,   π a distribution over W
//! ```
//!
//! With the power constraints dualized (multipliers `η_i ≥ 0`), the
//! inner maximization over `π` is solved in closed form by the Gibbs
//! distribution (19); the dual `D(η)` is then minimized by gradient
//! descent, the gradient being the budget slack
//! `∂D/∂η_i = ρ_i − (α_i L_i + β_i X_i)` (eq. (22)).
//!
//! Algorithm 1 prescribes `δ_k = 1/k`; on heterogeneous instances the
//! raw powers span orders of magnitude, so we use the same descent with
//! per-coordinate AdaGrad scaling of a *normalized* gradient
//! `g̃_i = (ρ_i − cons_i)/(ρ_i + cons_i) ∈ (−1, 1]` — a diagonal
//! preconditioner, which preserves the convex-dual convergence
//! guarantee while making one tolerance work across all of the paper's
//! parameter ranges.
//!
//! The descent's inner loop is a [`SummaryWorkspace`]: the state table
//! and every accumulator are allocated once per solve ([`P4Solver`])
//! and reused across the up-to-30 000 dual iterations, with the
//! per-transmitter blocks of the summary fanned out over the worker
//! pool for larger networks.
//!
//! The achievable throughput `T^σ` reported by the paper's figures is
//! the expected throughput `E_π[T_w]` at the optimal dual point.

use crate::gibbs::{GibbsParams, GibbsSummary, SummaryWorkspace};
use econcast_core::{NodeParams, ThroughputMode};

/// Tuning knobs for the dual descent.
#[derive(Debug, Clone, Copy)]
pub struct P4Options {
    /// Maximum number of dual iterations.
    pub max_iters: usize,
    /// KKT residual tolerance (on the normalized gradient).
    pub tol: f64,
    /// Base step size for the AdaGrad-scaled updates, in units of the
    /// dimensionless multiplier `η·max(L,X)/σ`.
    pub step0: f64,
}

impl Default for P4Options {
    fn default() -> Self {
        P4Options {
            max_iters: 30_000,
            tol: 1e-4,
            step0: 2.0,
        }
    }
}

impl P4Options {
    /// A faster, looser preset for smoke tests and sweeps where 1%
    /// accuracy suffices.
    pub fn fast() -> Self {
        P4Options {
            max_iters: 4_000,
            tol: 1e-3,
            step0: 2.0,
        }
    }
}

/// Result of solving (P4).
#[derive(Debug, Clone)]
pub struct P4Solution {
    /// `T^σ = E_π[T_w]` at the optimal multipliers — the achievable
    /// throughput every figure normalizes against.
    pub throughput: f64,
    /// The full (P4) objective `E[T_w] + σ·H(π)` (throughput plus
    /// entropy bonus).
    pub objective: f64,
    /// Optimal Lagrange multipliers `η*` (natural units, 1/W·time).
    pub eta: Vec<f64>,
    /// Listen-time fractions at the optimum.
    pub alpha: Vec<f64>,
    /// Transmit-time fractions at the optimum.
    pub beta: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the KKT residual met the tolerance.
    pub converged: bool,
    /// The final Gibbs summary (burst masses etc.).
    pub summary: GibbsSummary,
}

impl P4Solution {
    /// Largest relative power-budget violation across nodes:
    /// `max_i (cons_i − ρ_i)/ρ_i`, clamped below at 0. A converged
    /// solution has this ≈ 0.
    pub fn max_power_violation(&self, nodes: &[NodeParams]) -> f64 {
        nodes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let cons = p.average_power(self.alpha[i], self.beta[i]);
                ((cons - p.budget_w) / p.budget_w).max(0.0)
            })
            .fold(0.0, f64::max)
    }
}

/// A reusable (P4) solver holding the summary workspace and the dual
/// descent state, so sweeps over `σ`, modes, or warm-started budgets
/// amortize every allocation. One instance serves one node count.
#[derive(Debug, Clone)]
pub struct P4Solver {
    workspace: SummaryWorkspace,
    /// Dual iterate.
    eta: Vec<f64>,
    /// AdaGrad accumulator.
    grad_sq: Vec<f64>,
    /// Normalized gradient scratch.
    grads: Vec<f64>,
    /// Dimensionless step scale per node.
    scale: Vec<f64>,
}

impl P4Solver {
    /// Allocates a solver for `n` nodes.
    pub fn new(n: usize) -> Self {
        P4Solver {
            workspace: SummaryWorkspace::new(n),
            eta: vec![0.0; n],
            grad_sq: vec![0.0; n],
            grads: vec![0.0; n],
            scale: vec![0.0; n],
        }
    }

    /// Read access to the owned workspace (e.g. for follow-up bound
    /// evaluations at the solved multipliers).
    pub fn workspace_mut(&mut self) -> &mut SummaryWorkspace {
        &mut self.workspace
    }

    /// Solves (P4) for an arbitrary (possibly heterogeneous) network by
    /// exact enumeration of `W` — practical to ~16 nodes, covering
    /// every configuration in the paper's evaluation.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty, its length differs from the
    /// solver's node count, or `sigma ≤ 0`.
    pub fn solve(
        &mut self,
        nodes: &[NodeParams],
        sigma: f64,
        mode: ThroughputMode,
        opts: P4Options,
    ) -> P4Solution {
        assert!(!nodes.is_empty(), "need at least one node");
        assert_eq!(nodes.len(), self.workspace.num_nodes(), "solver node count");
        assert!(sigma > 0.0 && sigma.is_finite());
        let n = nodes.len();

        // Dimensionless multiplier scale: steps are expressed in units
        // of σ / max(L_i, X_i) so that one unit shifts the Gibbs
        // exponent by O(1) regardless of the absolute power scale.
        for (i, p) in nodes.iter().enumerate() {
            self.scale[i] = sigma / p.listen_w.max(p.transmit_w);
            self.eta[i] = 0.0;
            self.grad_sq[i] = 0.0;
        }

        let mut converged = false;
        let mut iterations = 0;

        for k in 0..opts.max_iters {
            iterations = k + 1;
            let params = GibbsParams {
                nodes,
                eta: &self.eta,
                sigma,
                mode,
            };
            self.workspace.compute(&params);

            // Normalized budget-slack gradient and KKT residual, read
            // straight from the workspace buffers (no per-iteration
            // allocation).
            let alpha = self.workspace.alpha();
            let beta = self.workspace.beta();
            let mut residual = 0.0f64;
            for i in 0..n {
                let cons = nodes[i].average_power(alpha[i], beta[i]);
                let g = (nodes[i].budget_w - cons) / (nodes[i].budget_w + cons);
                self.grads[i] = g;
                let r = if self.eta[i] > 0.0 {
                    g.abs()
                } else {
                    (-g).max(0.0) // at η=0 only over-consumption violates KKT
                };
                residual = residual.max(r);
            }
            if residual < opts.tol {
                converged = true;
                break;
            }
            // AdaGrad-preconditioned projected descent step (23).
            for i in 0..n {
                self.grad_sq[i] += self.grads[i] * self.grads[i];
                let step = opts.step0 / self.grad_sq[i].sqrt().max(1e-12);
                self.eta[i] = (self.eta[i] - step * self.scale[i] * self.grads[i]).max(0.0);
            }
        }

        let summary = self.workspace.to_summary();
        P4Solution {
            throughput: summary.expected_throughput,
            objective: summary.p4_objective(sigma),
            eta: self.eta.clone(),
            alpha: summary.alpha.clone(),
            beta: summary.beta.clone(),
            iterations,
            converged,
            summary,
        }
    }
}

/// A pool of [`P4Solver`]s keyed by node count, for callers that solve
/// a mixed stream of instance sizes (the policy service's per-worker
/// workspace). The first solve at each `n` allocates the
/// `(n + 2)·2^{n−1}` state table; every later solve at that `n` reuses
/// it.
#[derive(Debug, Default)]
pub struct SolverPool {
    solvers: std::collections::HashMap<usize, P4Solver>,
}

impl SolverPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The reusable solver for `n`-node instances (allocated on first
    /// use).
    pub fn solver(&mut self, n: usize) -> &mut P4Solver {
        self.solvers.entry(n).or_insert_with(|| P4Solver::new(n))
    }

    /// Node counts currently held.
    pub fn sizes(&self) -> usize {
        self.solvers.len()
    }

    /// Solves (P4) with the pooled workspace for `nodes.len()`.
    pub fn solve(
        &mut self,
        nodes: &[NodeParams],
        sigma: f64,
        mode: ThroughputMode,
        opts: P4Options,
    ) -> P4Solution {
        self.solver(nodes.len()).solve(nodes, sigma, mode, opts)
    }
}

/// One-shot convenience wrapper around [`P4Solver`].
///
/// # Panics
///
/// Panics when `nodes` is empty or `sigma ≤ 0`.
pub fn solve_p4(
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
) -> P4Solution {
    assert!(!nodes.is_empty(), "need at least one node");
    P4Solver::new(nodes.len()).solve(nodes, sigma, mode, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    #[test]
    fn p4_respects_power_budgets() {
        let nodes = homogeneous(5);
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert!(
            sol.converged,
            "did not converge in {} iters",
            sol.iterations
        );
        assert!(
            sol.max_power_violation(&nodes) < 2e-3,
            "violation {}",
            sol.max_power_violation(&nodes)
        );
    }

    #[test]
    fn p4_throughput_below_oracle_and_positive() {
        let nodes = homogeneous(5);
        // Closed-form oracle groupput for the homogeneous clique.
        let (rho, l, x) = (10e-6, 500e-6, 500e-6);
        let beta_star = rho / (x + 4.0 * l);
        let t_star = 5.0 * 4.0 * beta_star;
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert!(sol.throughput > 0.0);
        assert!(
            sol.throughput <= t_star + 1e-9,
            "T^σ {} exceeds oracle {}",
            sol.throughput,
            t_star
        );
    }

    #[test]
    fn smaller_sigma_gives_higher_throughput() {
        // The paper's central σ tradeoff: T^σ increases as σ decreases
        // (Figs. 2–3).
        let nodes = homogeneous(5);
        let t_05 = solve_p4(&nodes, 0.5, Groupput, P4Options::default()).throughput;
        let t_025 = solve_p4(&nodes, 0.25, Groupput, P4Options::default()).throughput;
        assert!(
            t_025 > t_05,
            "σ=0.25 gave {t_025}, σ=0.5 gave {t_05} — ordering violated"
        );
    }

    #[test]
    fn solver_reuse_matches_fresh_solves() {
        // One P4Solver across a σ sweep gives exactly the one-shot
        // results — workspace reuse leaks no state between solves.
        let nodes = homogeneous(4);
        let mut solver = P4Solver::new(4);
        for sigma in [0.5, 0.25, 0.75] {
            let reused = solver.solve(&nodes, sigma, Groupput, P4Options::fast());
            let fresh = solve_p4(&nodes, sigma, Groupput, P4Options::fast());
            assert_eq!(
                reused.throughput.to_bits(),
                fresh.throughput.to_bits(),
                "sigma {sigma}"
            );
            assert_eq!(reused.eta, fresh.eta);
            assert_eq!(reused.iterations, fresh.iterations);
        }
    }

    #[test]
    fn solver_pool_reuses_and_matches_fresh() {
        let mut pool = SolverPool::new();
        for n in [3usize, 4, 3, 4, 3] {
            let nodes = homogeneous(n);
            let pooled = pool.solve(&nodes, 0.5, Groupput, P4Options::fast());
            let fresh = solve_p4(&nodes, 0.5, Groupput, P4Options::fast());
            assert_eq!(pooled.throughput.to_bits(), fresh.throughput.to_bits());
        }
        assert_eq!(pool.sizes(), 2, "one workspace per node count");
    }

    #[test]
    fn anyput_p4_bounded_by_one_and_budget_respected() {
        let nodes = homogeneous(5);
        let sol = solve_p4(&nodes, 0.5, Anyput, P4Options::default());
        assert!(sol.converged);
        assert!(sol.throughput <= 1.0);
        assert!(sol.max_power_violation(&nodes) < 2e-3);
    }

    #[test]
    fn heterogeneous_budgets_yield_heterogeneous_activity() {
        // Nodes with larger budgets should be awake more (Table II's
        // qualitative structure).
        let nodes = vec![
            NodeParams::from_microwatts(5.0, 1000.0, 1000.0),
            NodeParams::from_microwatts(10.0, 1000.0, 1000.0),
            NodeParams::from_microwatts(50.0, 1000.0, 1000.0),
            NodeParams::from_microwatts(100.0, 1000.0, 1000.0),
        ];
        let sol = solve_p4(&nodes, 0.25, Groupput, P4Options::default());
        let awake: Vec<f64> = (0..4).map(|i| sol.alpha[i] + sol.beta[i]).collect();
        assert!(awake[0] < awake[1] && awake[1] < awake[2] && awake[2] < awake[3]);
        assert!(sol.max_power_violation(&nodes) < 5e-3);
    }

    #[test]
    fn rich_nodes_have_zero_multiplier() {
        // A node whose budget dwarfs its consumption never binds (9):
        // its multiplier should stay ~0 while poor nodes' rise.
        let nodes = vec![
            NodeParams::from_microwatts(10.0, 500.0, 500.0),
            NodeParams::new(1.0, 500e-6, 500e-6), // 1 W budget: unconstrained
        ];
        let sol = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        assert!(sol.eta[1] < 1e-9, "rich node multiplier {}", sol.eta[1]);
        assert!(sol.eta[0] > 0.0);
    }

    #[test]
    fn fast_preset_is_close_to_default() {
        let nodes = homogeneous(4);
        let full = solve_p4(&nodes, 0.5, Groupput, P4Options::default());
        let fast = solve_p4(&nodes, 0.5, Groupput, P4Options::fast());
        let rel = (full.throughput - fast.throughput).abs() / full.throughput;
        assert!(rel < 0.05, "fast preset off by {rel}");
    }
}
