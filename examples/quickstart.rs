//! Quickstart: five energy-harvesting tags in a room.
//!
//! Builds a homogeneous clique at the paper's reference operating point
//! (ρ = 10 µW harvested, 500 µW listen/transmit), computes the oracle
//! groupput (P2), the achievable throughput `T^σ` (P4), and runs the
//! EconCast-C simulator — printing how close the distributed protocol
//! gets to both.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use econcast::core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast::oracle::oracle_groupput;
use econcast::sim::{SimConfig, Simulator};
use econcast::statespace::HomogeneousP4;

fn main() {
    let n = 5;
    let sigma = 0.5;
    // 10 µW harvested budget; 500 µW radio draw listening/transmitting.
    let params = NodeParams::from_microwatts(10.0, 500.0, 500.0);

    // 1. What could an omniscient scheduler achieve? (P2)
    let oracle = oracle_groupput(&vec![params; n]);
    println!("oracle groupput T*_g        = {:.5}", oracle.throughput);

    // 2. What can EconCast achieve at this temperature? (P4)
    let p4 = HomogeneousP4::new(n, params, sigma, ThroughputMode::Groupput).solve();
    println!("achievable  T^σ (σ = {sigma})  = {:.5}", p4.throughput);

    // 3. Run the actual distributed protocol.
    let mut cfg = SimConfig::ideal_clique(
        n,
        params,
        ProtocolConfig::capture_groupput(sigma),
        2_000_000.0, // 2M packet-times ≈ 33 minutes at 1 ms packets
        42,
    );
    cfg.eta0 = p4.eta; // start converged (nodes could persist η in flash)
    cfg.warmup = 200_000.0;
    let report = Simulator::new(cfg).expect("valid config").run();

    println!("simulated   T̃^σ            = {:.5}", report.groupput);
    println!();
    println!(
        "protocol reaches {:.1}% of T^σ and {:.1}% of the oracle",
        100.0 * report.groupput / p4.throughput,
        100.0 * report.groupput / oracle.throughput,
    );
    let budgets: Vec<f64> = vec![params.budget_w; n];
    println!(
        "worst power-budget overshoot: {:+.2}%",
        100.0 * report.max_budget_overshoot(&budgets)
    );
    println!(
        "mean received burst: {:.1} packets (analytic {:.1})",
        report.mean_burst_length().unwrap_or(f64::NAN),
        p4.summary.average_burst_length().unwrap_or(f64::NAN),
    );
}
