//! Topology discovery: where a cluster front learns its shape.
//!
//! A deployment answers the same questions everywhere — which
//! backends, which listen address, how big an admission queue — but
//! the answers arrive from different places depending on who is
//! asking: a config file checked into the deployment repo, an
//! environment override injected by the process manager, a CLI flag
//! typed by an operator debugging at 3am. This module resolves the
//! four layers in fixed precedence:
//!
//! ```text
//!   built-in default  <  config file  <  environment  <  CLI flags
//! ```
//!
//! and — the part that matters at 3am — records **provenance**: every
//! resolved field remembers which layer set it, so
//! [`Topology::provenance_report`] can print "queue_capacity = 16
//! (env ECONCAST_CLUSTER_QUEUE_CAPACITY)" instead of leaving the
//! operator to diff four sources by hand.
//!
//! The config file is deliberately minimal (`key = value` lines, `#`
//! comments, commas in list values) — no document-format dependency,
//! no nesting, every key identical to its env/CLI spelling so there
//! is exactly one vocabulary to remember:
//!
//! ```text
//! # cluster.conf
//! backends = 10.0.0.1:4700, 10.0.0.2:4700
//! listen = 0.0.0.0:4699
//! queue_capacity = 64
//! max_queue_delay_ms = 50
//! ```
//!
//! Environment keys are the same names upper-cased under the
//! `ECONCAST_CLUSTER_` prefix; CLI flags are the same names
//! kebab-cased (`--backends`, `--queue-capacity`, …).

use crate::front::FrontConfig;
use crate::router::SlotSpec;
use std::fmt;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

/// Which layer decided a field's final value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// Nothing overrode the built-in default.
    Default,
    /// Set by the config file at this path.
    File(String),
    /// Set by this environment variable.
    Env(String),
    /// Set by this CLI flag.
    Cli(String),
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Default => write!(f, "default"),
            Source::File(path) => write!(f, "file {path}"),
            Source::Env(var) => write!(f, "env {var}"),
            Source::Cli(flag) => write!(f, "cli {flag}"),
        }
    }
}

/// A resolved configuration field together with the layer that set it.
#[derive(Debug, Clone, PartialEq)]
pub struct Resolved<T> {
    /// The winning value.
    pub value: T,
    /// The layer it came from.
    pub source: Source,
}

impl<T> Resolved<T> {
    fn new(value: T) -> Self {
        Resolved {
            value,
            source: Source::Default,
        }
    }

    fn set(&mut self, value: T, source: Source) {
        self.value = value;
        self.source = source;
    }
}

/// A topology-discovery failure: which layer, which key, what was
/// wrong with it. Discovery is all-or-nothing — a half-understood
/// topology must not bind anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError {
    /// The offending layer.
    pub source: Source,
    /// The offending key or flag.
    pub key: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}`: {}", self.source, self.key, self.reason)
    }
}

impl std::error::Error for TopologyError {}

/// The discovered cluster topology, every field with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Backend addresses, in ring-slot order. Empty means "no remote
    /// backends" — a front over only its local fallback, which is a
    /// legal (degenerate) deployment during bootstrap.
    pub backends: Resolved<Vec<String>>,
    /// The front's listen address.
    pub listen: Resolved<String>,
    /// Admission-queue bound ([`FrontConfig::queue_capacity`]).
    pub queue_capacity: Resolved<usize>,
    /// Queueing-delay bound, milliseconds
    /// ([`FrontConfig::max_queue_delay`]).
    pub max_queue_delay_ms: Resolved<u64>,
    /// Connection cap ([`FrontConfig::max_connections`]).
    pub max_connections: Resolved<usize>,
    /// Batch cap ([`FrontConfig::max_batch`]).
    pub max_batch: Resolved<usize>,
}

impl Default for Topology {
    fn default() -> Self {
        let front = FrontConfig::default();
        Topology {
            backends: Resolved::new(Vec::new()),
            listen: Resolved::new("127.0.0.1:0".to_string()),
            queue_capacity: Resolved::new(front.queue_capacity),
            max_queue_delay_ms: Resolved::new(front.max_queue_delay.as_millis() as u64),
            max_connections: Resolved::new(front.max_connections),
            max_batch: Resolved::new(front.max_batch),
        }
    }
}

/// The one vocabulary all three override layers share.
const KEYS: [&str; 6] = [
    "backends",
    "listen",
    "queue_capacity",
    "max_queue_delay_ms",
    "max_connections",
    "max_batch",
];

impl Topology {
    /// Resolves the full layer stack. `file` is the raw config-file
    /// text (the caller reads it, so discovery itself does no IO and
    /// tests need no tempfiles) with `file_name` used only for
    /// provenance; `env` is a lookup into the environment
    /// (`std::env::var(k).ok()` in production); `cli` is the raw
    /// argument list, `--key value` pairs.
    pub fn discover(
        file: Option<(&str, &str)>,
        env: impl Fn(&str) -> Option<String>,
        cli: &[String],
    ) -> Result<Topology, TopologyError> {
        let mut topo = Topology::default();
        if let Some((name, text)) = file {
            topo.apply_file(name, text)?;
        }
        topo.apply_env(env)?;
        topo.apply_cli(cli)?;
        Ok(topo)
    }

    fn apply_file(&mut self, name: &str, text: &str) -> Result<(), TopologyError> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let src = Source::File(format!("{name}:{}", lineno + 1));
            let Some((key, value)) = line.split_once('=') else {
                return Err(TopologyError {
                    source: src,
                    key: line.to_string(),
                    reason: "expected `key = value`".to_string(),
                });
            };
            self.apply(key.trim(), value.trim(), src)?;
        }
        Ok(())
    }

    fn apply_env(&mut self, env: impl Fn(&str) -> Option<String>) -> Result<(), TopologyError> {
        for key in KEYS {
            let var = format!("ECONCAST_CLUSTER_{}", key.to_uppercase());
            if let Some(value) = env(&var) {
                self.apply(key, value.trim(), Source::Env(var))?;
            }
        }
        Ok(())
    }

    fn apply_cli(&mut self, cli: &[String]) -> Result<(), TopologyError> {
        let mut args = cli.iter();
        while let Some(flag) = args.next() {
            let Some(kebab) = flag.strip_prefix("--") else {
                return Err(TopologyError {
                    source: Source::Cli(flag.clone()),
                    key: flag.clone(),
                    reason: "expected a `--key` flag".to_string(),
                });
            };
            let key = kebab.replace('-', "_");
            if !KEYS.contains(&key.as_str()) {
                return Err(TopologyError {
                    source: Source::Cli(flag.clone()),
                    key: flag.clone(),
                    reason: format!("unknown flag (known: {})", KEYS.join(", ")),
                });
            }
            let Some(value) = args.next() else {
                return Err(TopologyError {
                    source: Source::Cli(flag.clone()),
                    key: flag.clone(),
                    reason: "flag needs a value".to_string(),
                });
            };
            self.apply(&key, value, Source::Cli(flag.clone()))?;
        }
        Ok(())
    }

    /// Applies one `key = value` from any layer.
    fn apply(&mut self, key: &str, value: &str, source: Source) -> Result<(), TopologyError> {
        let err = |reason: String| TopologyError {
            source: source.clone(),
            key: key.to_string(),
            reason,
        };
        let positive = |value: &str| -> Result<usize, TopologyError> {
            match value.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(err(format!("`{value}` is not a positive integer"))),
            }
        };
        match key {
            "backends" => {
                let list: Vec<String> = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                for addr in &list {
                    // Validate shape early — `host:port` with a numeric
                    // port — without resolving: discovery must work on a
                    // machine that can't yet reach the backends.
                    let port_ok = addr.rsplit_once(':').is_some_and(|(host, port)| {
                        !host.is_empty() && port.parse::<u16>().is_ok()
                    });
                    if !port_ok {
                        return Err(err(format!("backend `{addr}` is not host:port")));
                    }
                }
                self.backends.set(list, source);
            }
            "listen" => {
                if value
                    .rsplit_once(':')
                    .is_none_or(|(h, p)| h.is_empty() || p.parse::<u16>().is_err())
                {
                    return Err(err(format!("`{value}` is not host:port")));
                }
                self.listen.set(value.to_string(), source);
            }
            "queue_capacity" => {
                let n = positive(value)?;
                self.queue_capacity.set(n, source);
            }
            "max_queue_delay_ms" => {
                let ms = value
                    .parse::<u64>()
                    .map_err(|_| err(format!("`{value}` is not an integer")))?;
                self.max_queue_delay_ms.set(ms, source);
            }
            "max_connections" => {
                let n = positive(value)?;
                self.max_connections.set(n, source);
            }
            "max_batch" => {
                let n = positive(value)?;
                self.max_batch.set(n, source);
            }
            other => {
                return Err(err(format!(
                    "unknown key `{other}` (known: {})",
                    KEYS.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// The [`FrontConfig`] this topology resolved to.
    pub fn front_config(&self) -> FrontConfig {
        FrontConfig {
            max_connections: self.max_connections.value,
            max_batch: self.max_batch.value,
            queue_capacity: self.queue_capacity.value,
            max_queue_delay: Duration::from_millis(self.max_queue_delay_ms.value),
        }
    }

    /// Resolves the backend list into ring slots, one `Remote` slot
    /// per backend in list order. DNS/interface resolution happens
    /// here (bind time), not at discovery time. An empty backend list
    /// resolves to a single `Local` slot — the bootstrap deployment: a
    /// front serving entirely on its in-process fallback solver until
    /// backends are added.
    pub fn slot_specs(&self) -> std::io::Result<Vec<SlotSpec>> {
        if self.backends.value.is_empty() {
            return Ok(vec![SlotSpec::Local]);
        }
        self.backends
            .value
            .iter()
            .map(|addr| {
                let resolved: SocketAddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::other(format!("`{addr}` resolved to nothing"))
                })?;
                Ok(SlotSpec::Remote(resolved))
            })
            .collect()
    }

    /// The operator-facing provenance table: one line per field, final
    /// value plus the layer that decided it.
    pub fn provenance_report(&self) -> String {
        let mut out = String::new();
        let mut line = |key: &str, value: String, source: &Source| {
            out.push_str(&format!("{key:<20} = {value:<40} ({source})\n"));
        };
        line(
            "backends",
            if self.backends.value.is_empty() {
                "(none: local fallback only)".to_string()
            } else {
                self.backends.value.join(",")
            },
            &self.backends.source,
        );
        line("listen", self.listen.value.clone(), &self.listen.source);
        line(
            "queue_capacity",
            self.queue_capacity.value.to_string(),
            &self.queue_capacity.source,
        );
        line(
            "max_queue_delay_ms",
            self.max_queue_delay_ms.value.to_string(),
            &self.max_queue_delay_ms.source,
        );
        line(
            "max_connections",
            self.max_connections.value.to_string(),
            &self.max_connections.source,
        );
        line(
            "max_batch",
            self.max_batch.value.to_string(),
            &self.max_batch.source,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    #[test]
    fn defaults_match_front_config_defaults() {
        let topo = Topology::discover(None, no_env, &[]).expect("discover");
        let front = FrontConfig::default();
        assert_eq!(topo.front_config().queue_capacity, front.queue_capacity);
        assert_eq!(topo.front_config().max_queue_delay, front.max_queue_delay);
        assert_eq!(topo.front_config().max_connections, front.max_connections);
        assert_eq!(topo.front_config().max_batch, front.max_batch);
        assert_eq!(topo.backends.source, Source::Default);
        // No backends → the bootstrap topology: one local slot.
        assert_eq!(topo.slot_specs().expect("resolve"), vec![SlotSpec::Local]);
    }

    #[test]
    fn layers_stack_in_precedence_order_with_provenance() {
        let file = "\
# deployment defaults
backends = 127.0.0.1:4701, 127.0.0.1:4702
queue_capacity = 64
max_queue_delay_ms = 25
";
        let env = |var: &str| match var {
            "ECONCAST_CLUSTER_QUEUE_CAPACITY" => Some("128".to_string()),
            "ECONCAST_CLUSTER_LISTEN" => Some("0.0.0.0:4699".to_string()),
            _ => None,
        };
        let cli = vec!["--queue-capacity".to_string(), "16".to_string()];
        let topo = Topology::discover(Some(("cluster.conf", file)), env, &cli).expect("discover");

        // File set what nothing overrode.
        assert_eq!(
            topo.backends.value,
            vec!["127.0.0.1:4701".to_string(), "127.0.0.1:4702".to_string()]
        );
        assert_eq!(topo.backends.source, Source::File("cluster.conf:2".into()));
        assert_eq!(topo.max_queue_delay_ms.value, 25);
        // Env beat the file's queue_capacity — then CLI beat env.
        assert_eq!(topo.queue_capacity.value, 16);
        assert_eq!(
            topo.queue_capacity.source,
            Source::Cli("--queue-capacity".into())
        );
        // Env set the listen address unopposed.
        assert_eq!(topo.listen.value, "0.0.0.0:4699");
        assert_eq!(
            topo.listen.source,
            Source::Env("ECONCAST_CLUSTER_LISTEN".into())
        );
        // Untouched fields stay at (and say) default.
        assert_eq!(topo.max_batch.source, Source::Default);

        let report = topo.provenance_report();
        assert!(report.contains("cli --queue-capacity"), "{report}");
        assert!(report.contains("env ECONCAST_CLUSTER_LISTEN"), "{report}");
        assert!(report.contains("file cluster.conf:2"), "{report}");
        assert!(report.contains("(default)"), "{report}");
    }

    #[test]
    fn bad_values_fail_discovery_with_the_offending_layer() {
        let e = Topology::discover(Some(("c.conf", "queue_capacity = zero")), no_env, &[])
            .expect_err("bad int");
        assert_eq!(e.source, Source::File("c.conf:1".into()));
        assert!(e.reason.contains("positive integer"), "{e}");

        let e = Topology::discover(Some(("c.conf", "no_such_key = 1")), no_env, &[])
            .expect_err("unknown key");
        assert!(e.reason.contains("unknown key"), "{e}");

        let e = Topology::discover(Some(("c.conf", "backends = not-an-addr")), no_env, &[])
            .expect_err("bad backend");
        assert!(e.reason.contains("host:port"), "{e}");

        let env = |var: &str| (var == "ECONCAST_CLUSTER_MAX_BATCH").then(|| "-3".to_string());
        let e = Topology::discover(None, env, &[]).expect_err("bad env");
        assert_eq!(e.source, Source::Env("ECONCAST_CLUSTER_MAX_BATCH".into()));

        let cli = vec!["--listen".to_string()];
        let e = Topology::discover(None, no_env, &cli).expect_err("missing value");
        assert!(e.reason.contains("needs a value"), "{e}");

        let cli = vec!["--frobnicate".to_string(), "1".to_string()];
        let e = Topology::discover(None, no_env, &cli).expect_err("unknown flag");
        assert!(e.reason.contains("unknown flag"), "{e}");
    }

    #[test]
    fn comments_blanks_and_spacing_are_tolerated() {
        let file =
            "\n#  full-line comment\n  backends =   127.0.0.1:4701  # trailing comment\nmax_batch=512\n";
        let topo = Topology::discover(Some(("c.conf", file)), no_env, &[]).expect("discover");
        assert_eq!(topo.backends.value, vec!["127.0.0.1:4701".to_string()]);
        assert_eq!(topo.max_batch.value, 512);
        assert_eq!(topo.max_batch.source, Source::File("c.conf:4".into()));
    }

    #[test]
    fn slot_specs_resolve_in_list_order() {
        let cli = vec![
            "--backends".to_string(),
            "127.0.0.1:4701,127.0.0.1:4702".to_string(),
        ];
        let topo = Topology::discover(None, no_env, &cli).expect("discover");
        let slots = topo.slot_specs().expect("resolve loopback");
        assert_eq!(slots.len(), 2);
        match (&slots[0], &slots[1]) {
            (SlotSpec::Remote(a), SlotSpec::Remote(b)) => {
                assert_eq!(a.port(), 4701);
                assert_eq!(b.port(), 4702);
            }
            other => panic!("expected two remote slots, got {other:?}"),
        }
    }
}
