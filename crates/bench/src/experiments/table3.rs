//! Table III: emulated EconCast-C vs Panda's throughput, normalized to
//! the achievable `T^σ` with σ = 0.25.
//!
//! Grid: `(N, ρ) ∈ {5, 10} × {1 mW, 5 mW}` on the CC2500 power model.
//! Paper findings: EconCast-C achieves 67–81% of `T^σ`; Panda reaches
//! 6–36%; the advantage is 8–11× at ρ = 1 mW and 2–4× at ρ = 5 mW.

use crate::Scale;
use econcast_baselines::PandaConfig;
use econcast_hw::TestbedConfig;

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let sigma = 0.25;
    let mut out = String::new();
    out.push_str("Table III — EconCast-C (emulated testbed) vs Panda, σ = 0.25\n");
    out.push_str("paper: T̃/T^σ = 67–81%; T_Panda/T^σ = 6–36%; ratio 8–11x (1 mW), 2–4x (5 mW)\n\n");
    out.push_str("  (N, rho)     T~/T^σ   T_Panda/T^σ   T~/T_Panda\n");
    for rho_mw in [1.0, 5.0] {
        for n in [5usize, 10] {
            let mut cfg = TestbedConfig::paper_setup(n, rho_mw, sigma);
            cfg.duration_s = scale.duration(6.0 * 3600.0);
            let run = cfg.run();

            // Panda under the same radio powers and budget. Panda's
            // packet is the same 40 ms unit, so rates line up directly.
            let mut panda = PandaConfig::new(n, cfg.node_params());
            panda.sim_duration = scale.duration(2_000_000.0);
            let t_panda = panda.calibrated().groupput;

            out.push_str(&format!(
                "  ({n:>2}, {rho_mw:>3.0} mW)  {:>6.2}%  {:>11.2}%  {:>11.2}x\n",
                100.0 * run.ratio_ideal(),
                100.0 * t_panda / run.achievable_ideal,
                run.throughput / t_panda,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn econcast_beats_panda_at_one_grid_point() {
        let mut cfg = TestbedConfig::paper_setup(5, 1.0, 0.25);
        cfg.duration_s = 1800.0;
        let run = cfg.run();
        let mut panda = PandaConfig::new(5, cfg.node_params());
        panda.sim_duration = 300_000.0;
        let t_panda = panda.calibrated().groupput;
        assert!(
            run.throughput > 2.0 * t_panda,
            "EconCast {} not ≫ Panda {t_panda}",
            run.throughput
        );
    }
}
