//! Table IV: distribution of pings (= detected active listeners)
//! received by the transmitter after each packet.
//!
//! `N = 5`, `σ = 0.25`, `ρ ∈ {1 mW, 5 mW}` on the emulated testbed.
//! Paper values (percent of packets followed by k pings):
//!
//! ```text
//! k          0      1      2     3     4
//! 1 mW   89.03   9.69   1.28  0.00  0.00
//! 5 mW   59.21  31.22   8.22  1.24  0.11
//! ```
//!
//! The headline shape: richer nodes listen more, so transmitters hear
//! more pings, capture longer, and earn more throughput.

use crate::Scale;
use econcast_hw::TestbedConfig;

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("Table IV — pings received after each packet (N = 5, σ = 0.25)\n");
    out.push_str(
        "paper:  1 mW: 89.0 / 9.7 / 1.3 / 0.0 / 0.0   5 mW: 59.2 / 31.2 / 8.2 / 1.2 / 0.1\n\n",
    );
    out.push_str("  rho     k=0     k=1     k=2     k=3     k=4\n");
    for rho_mw in [1.0, 5.0] {
        let mut cfg = TestbedConfig::paper_setup(5, rho_mw, 0.25);
        cfg.duration_s = scale.duration(6.0 * 3600.0);
        let run = cfg.run();
        let mut dist = run.ping_distribution.clone();
        dist.resize(5, 0.0);
        out.push_str(&format!(
            "{rho_mw:>3.0} mW {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}%\n",
            100.0 * dist[0],
            100.0 * dist[1],
            100.0 * dist[2],
            100.0 * dist[3],
            100.0 * dist[4],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_ping_fraction_dominates_at_low_budget() {
        let mut cfg = TestbedConfig::paper_setup(5, 1.0, 0.25);
        cfg.duration_s = 1800.0;
        let run = cfg.run();
        let d = run.ping_distribution;
        assert!(!d.is_empty());
        // k=0 is the most common outcome at 1 mW (paper: 89%).
        assert!(
            d[0] > d.iter().skip(1).cloned().fold(0.0, f64::max),
            "k=0 not dominant: {d:?}"
        );
    }
}
