//! Small statistics helpers for experiment aggregation.

/// Sample mean and 95% confidence half-width (normal approximation,
/// appropriate for the paper's 1000-sample averages in Fig. 2).
/// Returns `(mean, half_width)`; the half-width is 0 for fewer than two
/// samples.
pub fn mean_and_ci95(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (f64::NAN, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    (mean, 1.96 * se)
}

/// An empirical CDF built from samples, supporting quantile and
/// evaluation queries (used for the Fig. 5 latency plots).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF. NaN samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn new(samples: &[f64]) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not be NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after the assert"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Nearest-rank quantile, `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The `(value, probability)` step points for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len().max(1) as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_ci_basics() {
        let (m, ci) = mean_and_ci95(&[2.0, 4.0, 6.0, 8.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!(ci > 0.0);
        let (m1, ci1) = mean_and_ci95(&[3.0]);
        assert_eq!(m1, 3.0);
        assert_eq!(ci1, 0.0);
        let (m0, _) = mean_and_ci95(&[]);
        assert!(m0.is_nan());
    }

    #[test]
    fn ci_shrinks_with_sample_count() {
        let few: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let many: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
        let (_, ci_few) = mean_and_ci95(&few);
        let (_, ci_many) = mean_and_ci95(&many);
        assert!(ci_many < ci_few);
    }

    #[test]
    fn cdf_eval_and_quantile() {
        let c = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.0), 0.0);
        assert_eq!(c.eval(2.0), 0.5);
        assert_eq!(c.eval(10.0), 1.0);
        assert_eq!(c.quantile(0.5), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert!((c.mean() - 2.5).abs() < 1e-12);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let c = Cdf::new(&[5.0, 1.0, 3.0]);
        let pts = c.points();
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_samples_rejected() {
        Cdf::new(&[1.0, f64::NAN]);
    }

    proptest! {
        /// eval ∘ quantile is consistent: P(X ≤ q_p) ≥ p.
        #[test]
        fn prop_quantile_eval_consistency(
            mut xs in proptest::collection::vec(-100.0f64..100.0, 1..50),
            q in 0.01f64..1.0,
        ) {
            let c = Cdf::new(&xs);
            let v = c.quantile(q);
            prop_assert!(c.eval(v) >= q - 1e-12);
            xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            prop_assert!(v >= xs[0] && v <= xs[xs.len() - 1]);
        }
    }
}
