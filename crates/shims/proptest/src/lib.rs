//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests
//! use: the [`proptest!`] macro over functions whose arguments are
//! `name in strategy` bindings, range / `any::<T>()` / tuple /
//! `collection::vec` strategies, and the `prop_assert*` macros.
//!
//! Unlike upstream there is no shrinking and no persisted failure
//! file: each property runs a fixed number of deterministic cases
//! (seeded from the test name, overridable via `PROPTEST_CASES`), so
//! failures reproduce exactly across runs and machines.

use std::fmt;
use std::ops::Range;

/// Default number of cases per property (upstream defaults to 256; we
/// trade a little coverage for CI wall-clock, and the seed is fixed so
/// reruns explore the same points).
pub const DEFAULT_CASES: u32 = 64;

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SplitMix64 — deterministic, seedable, and plenty for case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test-name hash so every property gets its own
    /// stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Number of cases to run, honouring `PROPTEST_CASES`.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a full-range "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Vector-of-`S` strategy with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
        TestCaseError,
    };
}

/// Defines deterministic property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop_name(x in 0usize..10, y in 0.0f64..1.0) {
///         prop_assert!(x as f64 + y < 11.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let cases = $crate::cases();
            for case in 0..cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        e
                    );
                }
            }
        }
    )+};
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the enclosing property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::Strategy::sample(&crate::collection::vec(any::<u8>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        /// The macro itself: bindings, tuples, and prop_assert_eq.
        #[test]
        fn prop_macro_smoke(
            a in 0usize..10,
            pair in (any::<u16>(), 1usize..4),
        ) {
            prop_assert!(a < 10);
            let (x, n) = pair;
            let v = vec![x; n];
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "property `prop_fails` failed")]
    fn failing_property_panics() {
        proptest! {
            fn prop_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        prop_fails();
    }
}
