//! The Lagrange multiplier `η` and its noisy-gradient update, eq. (17).
//!
//! Each node maintains one scalar multiplier. At the end of the `k`-th
//! interval (length `τ_k`) it observes the change of its energy storage
//! level and updates
//!
//! ```text
//! η[k] = ( η[k−1] − δ_k/τ_k · (b[k] − b[k−1]) )⁺            (17)
//! ```
//!
//! `(b[k] − b[k−1])/τ_k` is an unbiased estimate of `ρ − (αL + βX)`,
//! the dual gradient (22): if the node under-spends its budget the
//! battery drifts up and `η` falls (be more active); if it over-spends
//! `η` rises (sleep more). Theorem 1 requires the diminishing schedule
//! `δ_k = 1/((k+1) log(k+1))`, `τ_k = k`; Section V-F notes that in
//! practice constant `δ` and `τ` work and trade convergence speed
//! against oscillation.


/// Step-size / interval-length schedule for the multiplier update.
///
/// Note on units: `δ` multiplies raw energy deltas (joules when time is
/// in seconds and power in watts), so its useful magnitude depends on
/// the power scale — the paper's "δ ∈ (0, 1)" presumes energy measured
/// in units where the per-interval drift is O(1). Use
/// [`StepSchedule::normalized_constant`] to pick `δ` from a
/// dimensionless step fraction instead of guessing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepSchedule {
    /// Constant `δ` and `τ` — the practical choice of Section V-F
    /// ("small constant δ and large constant τ").
    Constant {
        /// Step size `δ > 0` (units: 1/(energy·time) such that
        /// `δ/τ·Δb` moves `η` usefully; see the type-level note).
        delta: f64,
        /// Interval length `τ > 0` (packet-times).
        tau: f64,
    },
    /// The provably convergent schedule from Theorem 1:
    /// `δ_k = 1/((k+1)·log(k+1))`, `τ_k = k`.
    Theorem1,
}

impl StepSchedule {
    /// Builds a constant schedule whose worst-case per-update movement
    /// of the *dimensionless* multiplier `η·max(L,X)/σ` is `step_frac`.
    ///
    /// Derivation: one update moves `η` by `δ·|ρ − cons| ≤ δ·C̄` with
    /// `C̄ = max(L, X)`, i.e. moves `η·C̄/σ` by at most `δ·C̄²/σ`;
    /// solving for `δ` gives `δ = step_frac·σ/C̄²`.
    pub fn normalized_constant(
        step_frac: f64,
        tau: f64,
        sigma: f64,
        listen_w: f64,
        transmit_w: f64,
    ) -> Self {
        assert!(step_frac > 0.0 && step_frac.is_finite());
        assert!(sigma > 0.0 && sigma.is_finite());
        let cbar = listen_w.max(transmit_w);
        assert!(cbar > 0.0);
        StepSchedule::Constant {
            delta: step_frac * sigma / (cbar * cbar),
            tau,
        }
    }
}

impl StepSchedule {
    /// Step size `δ_k` for interval `k` (1-based).
    pub fn delta(&self, k: u64) -> f64 {
        match self {
            StepSchedule::Constant { delta, .. } => *delta,
            StepSchedule::Theorem1 => {
                let kf = k as f64;
                1.0 / ((kf + 1.0) * (kf + 1.0).ln())
            }
        }
    }

    /// Interval length `τ_k` for interval `k` (1-based), in packet-times.
    pub fn tau(&self, k: u64) -> f64 {
        match self {
            StepSchedule::Constant { tau, .. } => *tau,
            StepSchedule::Theorem1 => k as f64,
        }
    }
}

/// One node's Lagrange multiplier state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Multiplier {
    eta: f64,
    schedule: StepSchedule,
    /// Interval counter `k` (the next update closes interval `k`).
    k: u64,
}

impl Multiplier {
    /// Creates a multiplier starting at `η[0] = eta0 ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `eta0` is negative/non-finite or a constant schedule
    /// has `δ ∉ (0,1)` or `τ ≤ 0`.
    pub fn new(eta0: f64, schedule: StepSchedule) -> Self {
        assert!(
            eta0 >= 0.0 && eta0.is_finite(),
            "initial multiplier must be non-negative and finite"
        );
        if let StepSchedule::Constant { delta, tau } = schedule {
            assert!(
                delta > 0.0 && delta.is_finite(),
                "step size delta must be positive and finite, got {delta}"
            );
            assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
        }
        Multiplier {
            eta: eta0,
            schedule,
            k: 1,
        }
    }

    /// The current multiplier value `η[k]`, frozen within an interval.
    #[inline]
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// Number of completed update intervals.
    pub fn intervals_completed(&self) -> u64 {
        self.k - 1
    }

    /// Length `τ_k` of the *current* interval, so the caller knows when
    /// to next call [`Multiplier::update`].
    pub fn current_interval_length(&self) -> f64 {
        self.schedule.tau(self.k)
    }

    /// Closes interval `k` with the observed energy-storage drift
    /// `b[k] − b[k−1]` (joules, may be negative) and applies eq. (17).
    /// Returns the new `η[k]`.
    pub fn update(&mut self, battery_delta: f64) -> f64 {
        let delta_k = self.schedule.delta(self.k);
        let tau_k = self.schedule.tau(self.k);
        self.eta = (self.eta - delta_k / tau_k * battery_delta).max(0.0);
        self.k += 1;
        self.eta
    }

    /// Equivalent update expressed with the *gradient estimate*
    /// `ĝ = ρ − power_consumed/τ = (b[k]−b[k−1])/τ_k` directly, matching
    /// the centralized form (23): `η ← (η − δ_k · ĝ)⁺`.
    pub fn update_with_gradient(&mut self, gradient_estimate: f64) -> f64 {
        let delta_k = self.schedule.delta(self.k);
        self.eta = (self.eta - delta_k * gradient_estimate).max(0.0);
        self.k += 1;
        self.eta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overspending_raises_eta_underspending_lowers_it() {
        let mut m = Multiplier::new(
            1.0,
            StepSchedule::Constant {
                delta: 0.1,
                tau: 10.0,
            },
        );
        // Battery fell by 5 J over the interval (over-spending): η rises
        // by δ/τ·5 = 0.05.
        let eta = m.update(-5.0);
        assert!((eta - 1.05).abs() < 1e-12);
        // Battery rose by 5 J (under-spending): η falls back.
        let eta = m.update(5.0);
        assert!((eta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eta_is_clamped_at_zero() {
        let mut m = Multiplier::new(
            0.01,
            StepSchedule::Constant {
                delta: 0.5,
                tau: 1.0,
            },
        );
        let eta = m.update(100.0); // huge surplus
        assert_eq!(eta, 0.0);
        // And it can rise again from zero.
        let eta = m.update(-1.0);
        assert!(eta > 0.0);
    }

    #[test]
    fn theorem1_schedule_values() {
        let s = StepSchedule::Theorem1;
        // δ_k = 1/((k+1) ln(k+1)), τ_k = k.
        assert!((s.delta(1) - 1.0 / (2.0 * 2.0f64.ln())).abs() < 1e-12);
        assert!((s.delta(9) - 1.0 / (10.0 * 10.0f64.ln())).abs() < 1e-12);
        assert_eq!(s.tau(1), 1.0);
        assert_eq!(s.tau(7), 7.0);
        // The step sizes diminish.
        assert!(s.delta(2) < s.delta(1));
        assert!(s.delta(100) < s.delta(10));
    }

    #[test]
    fn theorem1_interval_grows_as_updates_accrue() {
        let mut m = Multiplier::new(0.0, StepSchedule::Theorem1);
        assert_eq!(m.current_interval_length(), 1.0);
        m.update(0.0);
        assert_eq!(m.current_interval_length(), 2.0);
        m.update(0.0);
        assert_eq!(m.current_interval_length(), 3.0);
        assert_eq!(m.intervals_completed(), 2);
    }

    #[test]
    fn gradient_form_matches_battery_form() {
        let sched = StepSchedule::Constant {
            delta: 0.2,
            tau: 4.0,
        };
        let mut a = Multiplier::new(2.0, sched);
        let mut b = Multiplier::new(2.0, sched);
        // Battery delta of −3 J over τ=4 ⇔ gradient estimate −0.75.
        let ea = a.update(-3.0);
        let eb = b.update_with_gradient(-0.75);
        assert!((ea - eb).abs() < 1e-12);
    }

    #[test]
    fn zero_drift_leaves_eta_unchanged() {
        let mut m = Multiplier::new(
            1.5,
            StepSchedule::Constant {
                delta: 0.1,
                tau: 1.0,
            },
        );
        assert_eq!(m.update(0.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "step size delta")]
    fn delta_out_of_range_rejected() {
        Multiplier::new(
            0.0,
            StepSchedule::Constant {
                delta: 0.0,
                tau: 1.0,
            },
        );
    }

    #[test]
    fn normalized_constant_scales_with_power() {
        // δ = step·σ/C̄²: one update with the worst-case drift |Δb| =
        // C̄·τ moves the dimensionless multiplier ηC̄/σ by exactly step.
        let (sigma, l, x) = (0.5, 500e-6, 400e-6);
        let sched = StepSchedule::normalized_constant(0.05, 100.0, sigma, l, x);
        let StepSchedule::Constant { delta, tau } = sched else {
            panic!("expected constant schedule");
        };
        let cbar: f64 = l.max(x);
        let mut m = Multiplier::new(0.0, sched);
        m.update(-cbar * tau); // node drew C̄ the whole interval, ρ≈0
        let dimensionless = m.eta() * cbar / sigma;
        assert!(
            (dimensionless - 0.05).abs() < 1e-12,
            "normalized step {dimensionless}"
        );
        assert!((delta - 0.05 * sigma / (cbar * cbar)).abs() < 1e-9 * delta);
    }

    #[test]
    #[should_panic(expected = "initial multiplier")]
    fn negative_eta0_rejected() {
        Multiplier::new(
            -0.1,
            StepSchedule::Constant {
                delta: 0.1,
                tau: 1.0,
            },
        );
    }
}
