//! Fig. 3: throughput ratio vs the power-consumption ratio `X/L`,
//! with the prior-art comparison.
//!
//! Homogeneous cliques, `N = 5`, `ρ = 10 µW`, `L + X = 1 mW`,
//! `X/L ∈ {1/9, 1/4, 3/7, 2/3, 1, 3/2, 7/3, 4, 9}`,
//! `σ ∈ {0.1, 0.25, 0.5}`. Paper findings: `T^σ/T*` peaks at
//! `X/L ≈ 1` and improves as σ falls; at `L = X = 500 µW` EconCast
//! beats Panda by 6× (σ = 0.5) and 17× (σ = 0.25); Birthday and
//! Searchlight sit similarly far below the oracle.

use crate::Scale;
use econcast_baselines::{BirthdayProtocol, PandaConfig, Searchlight};
use econcast_core::{NodeParams, ThroughputMode};
use econcast_statespace::HomogeneousP4;

const N: usize = 5;
const RHO_UW: f64 = 10.0;
const TOTAL_UW: f64 = 1000.0;

/// The `X/L` grid of the figure, as (numerator, denominator) pairs.
const RATIOS: [(f64, f64); 9] = [
    (1.0, 9.0),
    (1.0, 4.0),
    (3.0, 7.0),
    (2.0, 3.0),
    (1.0, 1.0),
    (3.0, 2.0),
    (7.0, 3.0),
    (4.0, 1.0),
    (9.0, 1.0),
];

fn params_for(ratio: f64) -> NodeParams {
    // X/L = ratio with L + X = 1 mW.
    let listen = TOTAL_UW / (1.0 + ratio);
    let transmit = TOTAL_UW - listen;
    NodeParams::from_microwatts(RHO_UW, listen, transmit)
}

/// Oracle groupput (closed form, constrained regime).
fn oracle(params: &NodeParams, mode: ThroughputMode) -> f64 {
    let nf = N as f64;
    match mode {
        ThroughputMode::Groupput => {
            let beta = params.budget_w / (params.transmit_w + (nf - 1.0) * params.listen_w);
            nf * (nf - 1.0) * beta
        }
        ThroughputMode::Anyput => {
            (nf * params.budget_w / (params.transmit_w + params.listen_w)).min(1.0)
        }
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 3 — T^σ/T* vs X/L (N = {N}, ρ = 10 µW, L + X = 1 mW)\n"
    ));
    out.push_str("paper: peak at X/L ≈ 1; EconCast/Panda = 6x (σ=0.5), 17x (σ=0.25) at X=L\n\n");

    for (label, mode) in [
        ("groupput", ThroughputMode::Groupput),
        ("anyput", ThroughputMode::Anyput),
    ] {
        out.push_str(&format!("[{label}]   X/L:"));
        for (a, b) in RATIOS {
            out.push_str(&format!(" {:>7.3}", a / b));
        }
        out.push('\n');
        for sigma in [0.1, 0.25, 0.5] {
            out.push_str(&format!("  σ={sigma:<5}  :"));
            for (a, b) in RATIOS {
                let p = params_for(a / b);
                let t = HomogeneousP4::new(N, p, sigma, mode).solve().throughput;
                out.push_str(&format!(" {:>7.4}", t / oracle(&p, mode)));
            }
            out.push('\n');
        }
        if mode == ThroughputMode::Groupput {
            // Baseline rows (the paper plots them on the groupput panel).
            out.push_str("  birthday :");
            for (a, b) in RATIOS {
                let p = params_for(a / b);
                let (t, _, _) = BirthdayProtocol::new(N, p).optimal_groupput();
                out.push_str(&format!(
                    " {:>7.4}",
                    t / oracle(&p, ThroughputMode::Groupput)
                ));
            }
            out.push('\n');
            out.push_str("  searchlt :");
            for (a, b) in RATIOS {
                let p = params_for(a / b);
                let t = Searchlight::paper_setup(N, p).groupput_upper_bound();
                out.push_str(&format!(
                    " {:>7.4}",
                    t / oracle(&p, ThroughputMode::Groupput)
                ));
            }
            out.push('\n');
            out.push_str("  panda    :");
            for (a, b) in RATIOS {
                let p = params_for(a / b);
                let mut cfg = PandaConfig::new(N, p);
                cfg.sim_duration = scale.duration(2_000_000.0);
                let t = cfg.calibrated().groupput;
                out.push_str(&format!(
                    " {:>7.4}",
                    t / oracle(&p, ThroughputMode::Groupput)
                ));
            }
            out.push('\n');
        }
        out.push('\n');
    }

    // Headline speedup at X = L.
    let p = params_for(1.0);
    let t_half = HomogeneousP4::new(N, p, 0.5, ThroughputMode::Groupput)
        .solve()
        .throughput;
    let t_quarter = HomogeneousP4::new(N, p, 0.25, ThroughputMode::Groupput)
        .solve()
        .throughput;
    let mut panda = PandaConfig::new(N, p);
    panda.sim_duration = scale.duration(2_000_000.0);
    let t_panda = panda.calibrated().groupput;
    out.push_str(&format!(
        "headline at X=L: EconCast/Panda = {:.1}x (σ=0.5), {:.1}x (σ=0.25)  [paper: 6x, 17x]\n",
        t_half / t_panda,
        t_quarter / t_panda
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_peaks_near_symmetric_powers() {
        let sigma = 0.5;
        let at = |r: f64| {
            let p = params_for(r);
            HomogeneousP4::new(N, p, sigma, ThroughputMode::Groupput)
                .solve()
                .throughput
                / oracle(&p, ThroughputMode::Groupput)
        };
        let peak = at(1.0);
        assert!(peak > at(1.0 / 9.0), "X/L=1 should beat X/L=1/9");
        assert!(peak > at(9.0), "X/L=1 should beat X/L=9");
    }

    #[test]
    fn econcast_beats_birthday_at_symmetric_powers() {
        let p = params_for(1.0);
        let t = HomogeneousP4::new(N, p, 0.25, ThroughputMode::Groupput)
            .solve()
            .throughput;
        let (tb, _, _) = BirthdayProtocol::new(N, p).optimal_groupput();
        assert!(t > 3.0 * tb, "EconCast {t} not ≫ Birthday {tb}");
    }
}
