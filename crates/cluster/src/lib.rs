//! # econcast-cluster — multi-process deployment of the policy service
//!
//! The serving stack so far scales *within* one process: `PolicyServer`
//! consistent-hashes canonical instance keys across in-process
//! `PolicyService` shards. This crate adds the layer the wire
//! handshake was designed for: the same ring, but the slots are
//! **backend processes**.
//!
//! ```text
//!                        ┌────────────────────────────┐
//!   PolicyClient ──TCP──▶│ ClusterFront               │
//!                        │  └─ ClusterRouter          │
//!                        │      ├─ RemoteShard ──TCP──┼──▶ policy_backend (proc 1)
//!                        │      ├─ RemoteShard ──TCP──┼──▶ policy_backend (proc 2)
//!                        │      ├─ (Local slot)       │      ▲
//!                        │      └─ fallback solver    │      │ spawn/kill/respawn
//!                        └────────────────────────────┘   Supervisor
//! ```
//!
//! * [`RemoteShard`] — a pooled, reconnecting dialer over
//!   `PolicyClient` with bounded retry/backoff and a per-backend
//!   health machine (down after `unhealthy_after` consecutive
//!   failures, reprobed after `reprobe_after`).
//! * [`ClusterRouter`] — routes canonicalized `InstanceKey`s over the
//!   same 64-vnode FNV-1a ring as `ShardRouter`, fans batches out to
//!   backends concurrently, reassembles responses in request order,
//!   and re-serves any failed backend's sub-batch on a **local
//!   fallback solver** — recorded in [`ClusterStats`], never surfaced
//!   as a caller error, and bit-identical to what the backend would
//!   have answered (every solve is deterministic and the fallback runs
//!   the backends' config).
//! * [`ClusterFront`] — a `PolicyServer`-compatible TCP front-end:
//!   clients connect to one address and the cluster is transparent.
//!   Stats requests fan in cluster-wide over the existing
//!   `StatsRequest` wire path.
//! * [`Supervisor`] — spawns and monitors `policy_backend` child
//!   processes (readiness via their `LISTENING <addr>` line, liveness
//!   via `try_wait`, replacement via [`Supervisor::respawn`] +
//!   [`ClusterRouter::retarget_slot`]).
//!
//! The load-bearing guarantee is unchanged from every prior layer: a
//! batch served through a cluster returns **bit-identical policies,
//! throughputs, and certificates** to the single-process path — only
//! tier labels may shift to `Exact` across batching boundaries —
//! including while backends are being killed mid-run (pinned by
//! `tests/cluster.rs` over supervisor-spawned processes on real TCP).

pub mod front;
pub mod remote;
pub mod router;
pub mod supervisor;

pub use front::{ClusterFront, FrontConfig, FrontHandle};
pub use remote::{RemoteConfig, RemoteShard, RemoteShardStats};
pub use router::{ClusterConfig, ClusterRouter, ClusterStats, SlotSpec, StatsSource};
pub use supervisor::{default_backend_binary, Supervisor, SupervisorConfig};
