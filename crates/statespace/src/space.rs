//! Enumeration of the collision-free state space `W`.
//!
//! `W` contains every assignment of `{s, l, x}` to the `N` nodes with at
//! most one `x`. Its cardinality is
//!
//! ```text
//! |W| = 2^N            (no transmitter; every subset may listen)
//!     + N · 2^{N−1}    (one of N transmitters; any subset of the rest listens)
//!     = (N + 2) · 2^{N−1}
//! ```
//!
//! which is the reduction from `3^N` quoted in Section III-C.

use crate::state::NetworkState;

/// The collision-free state space for `n` nodes. Enumeration is exact
/// and intended for the analytical computations of Sections VI–VII
/// (`n ≤ 10` in the paper; we allow up to 20 before memory/time become
/// silly — the homogeneous fast path covers larger networks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateSpace {
    n: usize,
}

impl StateSpace {
    /// Maximum supported network size for exact enumeration.
    pub const MAX_N: usize = 20;

    /// Creates the state space for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `n > MAX_N` (use
    /// [`crate::homogeneous`] for large homogeneous networks).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "state space needs at least one node");
        assert!(
            n <= Self::MAX_N,
            "exact enumeration capped at {} nodes (got {n}); \
             use the homogeneous fast path for larger networks",
            Self::MAX_N
        );
        StateSpace { n }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// `|W| = (N + 2) · 2^{N−1}`.
    pub fn len(&self) -> usize {
        (self.n + 2) * (1usize << (self.n - 1))
    }

    /// State spaces are never empty (`n ≥ 1` ⇒ at least the all-sleep
    /// state exists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all states: first the `2^N` transmitter-free
    /// states, then for each transmitter the `2^{N−1}` listener subsets
    /// of the remaining nodes.
    pub fn iter(&self) -> impl Iterator<Item = NetworkState> + '_ {
        let n = self.n;
        let no_tx = (0u64..(1u64 << n)).map(|mask| NetworkState::new(None, mask));
        let with_tx = (0..n).flat_map(move |t| {
            // Enumerate subsets of the n−1 nodes other than t by
            // expanding a compact (n−1)-bit mask around bit t.
            (0u64..(1u64 << (n - 1))).map(move |compact| {
                let low = compact & ((1u64 << t) - 1);
                let high = (compact >> t) << (t + 1);
                NetworkState::new(Some(t), low | high)
            })
        });
        no_tx.chain(with_tx)
    }

    /// Collects all states into a vector (convenient for repeated
    /// passes; ~16 bytes per state).
    pub fn states(&self) -> Vec<NetworkState> {
        self.iter().collect()
    }

    /// Iterates over all states in the *kernel order* used by the
    /// streaming summarizer (`gibbs::SummaryWorkspace`): the same
    /// block structure as [`StateSpace::iter`], but listener subsets
    /// within each block follow the reflected Gray code
    /// `g(k) = k ⊕ (k >> 1)`, so consecutive states differ in exactly
    /// one listener bit. Same set of states, different order.
    pub fn iter_gray(&self) -> impl Iterator<Item = NetworkState> + '_ {
        let n = self.n;
        let no_tx = (0u64..(1u64 << n)).map(|k| NetworkState::new(None, k ^ (k >> 1)));
        let with_tx = (0..n).flat_map(move |t| {
            (0u64..(1u64 << (n - 1))).map(move |k| {
                let compact = k ^ (k >> 1);
                let low = compact & ((1u64 << t) - 1);
                let high = (compact >> t) << (t + 1);
                NetworkState::new(Some(t), low | high)
            })
        });
        no_tx.chain(with_tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn cardinality_formula_matches_enumeration() {
        for n in 1..=10 {
            let space = StateSpace::new(n);
            let count = space.iter().count();
            assert_eq!(count, space.len(), "n = {n}");
            assert_eq!(count, (n + 2) * (1 << (n - 1)), "n = {n}");
        }
    }

    #[test]
    fn paper_quoted_sizes() {
        // Section III-C: the reduction from 3^N to (N+2)·2^{N−1}.
        assert_eq!(StateSpace::new(5).len(), 112);
        assert_eq!(StateSpace::new(10).len(), 6144);
        // And it is indeed smaller than 3^N for the paper's sizes.
        assert!(112 < 3usize.pow(5));
        assert!(6144 < 3usize.pow(10));
    }

    #[test]
    fn states_are_distinct_and_collision_free() {
        let space = StateSpace::new(6);
        let mut seen = HashSet::new();
        for s in space.iter() {
            // At most one transmitter is structural; check the
            // transmitter never also listens.
            if let Some(t) = s.transmitter() {
                assert!(!s.is_listening(t));
            }
            assert!(seen.insert(s), "duplicate state {s:?}");
        }
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn every_three_state_assignment_with_le_one_tx_is_present() {
        // Cross-check against brute force over 3^N for a small n.
        let n = 4;
        let space = StateSpace::new(n);
        let enumerated: HashSet<String> = space.iter().map(|s| s.letters(n)).collect();
        let mut brute = HashSet::new();
        for code in 0..3usize.pow(n as u32) {
            let mut c = code;
            let mut letters = String::new();
            let mut tx = 0;
            for _ in 0..n {
                let d = c % 3;
                c /= 3;
                letters.push(match d {
                    0 => 's',
                    1 => 'l',
                    _ => {
                        tx += 1;
                        'x'
                    }
                });
            }
            if tx <= 1 {
                brute.insert(letters);
            }
        }
        assert_eq!(enumerated, brute);
    }

    #[test]
    fn gray_order_visits_every_state_exactly_once() {
        for n in [1usize, 2, 5, 8] {
            let space = StateSpace::new(n);
            let plain: HashSet<NetworkState> = space.iter().collect();
            let mut seen = HashSet::new();
            let mut prev: Option<NetworkState> = None;
            for s in space.iter_gray() {
                assert!(seen.insert(s), "n={n}: duplicate {s:?} in Gray order");
                // Within a block, consecutive listener masks differ in
                // exactly one bit — the property the kernel exploits.
                if let Some(p) = prev {
                    if p.transmitter() == s.transmitter() {
                        assert_eq!(
                            (p.listener_mask() ^ s.listener_mask()).count_ones(),
                            1,
                            "n={n}: non-adjacent Gray step {p:?} -> {s:?}"
                        );
                    }
                }
                prev = Some(s);
            }
            assert_eq!(seen, plain, "n={n}: Gray order must cover exactly W");
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        StateSpace::new(0);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn oversized_space_rejected() {
        StateSpace::new(StateSpace::MAX_N + 1);
    }

    proptest! {
        /// Listener masks never include the transmitter, and per-state
        /// throughput bounds hold: groupput ≤ N−1, anyput ≤ 1.
        #[test]
        fn prop_state_invariants(n in 1usize..9) {
            let space = StateSpace::new(n);
            for s in space.iter() {
                prop_assert!(s.listener_count() <= n - usize::from(s.nu()));
                prop_assert!(
                    s.throughput(econcast_core::ThroughputMode::Groupput) <= (n - 1) as f64
                );
                prop_assert!(s.throughput(econcast_core::ThroughputMode::Anyput) <= 1.0);
                // Listener bits beyond n are never set.
                prop_assert_eq!(s.listener_mask() >> n, 0);
            }
        }
    }
}
