//! Listener estimation `ĉ(t)` / `γ̂(t)` (Section V-C).
//!
//! EconCast's rates need to know how many other nodes are currently
//! listening (groupput) or whether any node is (anyput). In theory the
//! protocol is analyzed with perfect knowledge (Theorem 1); in practice
//! the count is estimated from low-cost informationless *pings*. This
//! module defines the estimation interface plus two reference
//! implementations:
//!
//! * [`PerfectEstimator`] — returns the true count (the idealized
//!   setting of the numerical evaluation, Section VII-A);
//! * [`NoisyEstimator`] — deterministic bias/truncation models to study
//!   the paper's claim that "the estimates do not need to be accurate
//!   for EconCast to function, although poor estimates are expected to
//!   reduce throughput".
//!
//! The realistic ping-collision estimator lives in `econcast-hw`, next
//! to the radio model it depends on; it implements the same trait.

/// The outcome of a listener estimation round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListenerEstimate {
    /// Estimated number of concurrent listeners `ĉ(t)`.
    pub count: f64,
}

impl ListenerEstimate {
    /// The anyput indicator `γ̂(t) = 1{ĉ ≥ 1}`.
    pub fn any(self) -> bool {
        self.count >= 1.0
    }
}

/// Strategy for deriving `ĉ(t)` from ground truth. Implementations may
/// be stateful (e.g. exponentially smoothed ping counters).
pub trait ListenerEstimator {
    /// Produces an estimate given the *true* number of current
    /// listeners. Realistic estimators degrade this ground truth to
    /// model ping loss or collision; ideal ones return it unchanged.
    fn estimate(&mut self, true_listeners: usize) -> ListenerEstimate;
}

/// Perfect knowledge of the listener count: `ĉ(t) = c(t)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectEstimator;

impl ListenerEstimator for PerfectEstimator {
    fn estimate(&mut self, true_listeners: usize) -> ListenerEstimate {
        ListenerEstimate {
            count: true_listeners as f64,
        }
    }
}

/// A deterministic degradation model: the true count is scaled by
/// `gain`, shifted by `bias`, and clamped at `cap` and zero. Useful for
/// sensitivity studies of estimation error.
#[derive(Debug, Clone, Copy)]
pub struct NoisyEstimator {
    /// Multiplicative detection gain (e.g. 0.8 ⇒ 20% of pings missed).
    pub gain: f64,
    /// Additive bias in listeners.
    pub bias: f64,
    /// Upper cap on reported listeners (a receiver can only decode so
    /// many pings per interval); `f64::INFINITY` disables the cap.
    pub cap: f64,
}

impl NoisyEstimator {
    /// An estimator that misses a fraction `miss ∈ [0, 1]` of
    /// listeners.
    pub fn with_miss_rate(miss: f64) -> Self {
        assert!((0.0..=1.0).contains(&miss));
        NoisyEstimator {
            gain: 1.0 - miss,
            bias: 0.0,
            cap: f64::INFINITY,
        }
    }
}

impl ListenerEstimator for NoisyEstimator {
    fn estimate(&mut self, true_listeners: usize) -> ListenerEstimate {
        let raw = self.gain * true_listeners as f64 + self.bias;
        ListenerEstimate {
            count: raw.clamp(0.0, self.cap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimator_is_identity() {
        let mut e = PerfectEstimator;
        for c in 0..10 {
            assert_eq!(e.estimate(c).count, c as f64);
        }
    }

    #[test]
    fn any_indicator_threshold() {
        assert!(!ListenerEstimate { count: 0.0 }.any());
        assert!(!ListenerEstimate { count: 0.99 }.any());
        assert!(ListenerEstimate { count: 1.0 }.any());
        assert!(ListenerEstimate { count: 4.0 }.any());
    }

    #[test]
    fn noisy_estimator_scales_and_clamps() {
        let mut e = NoisyEstimator {
            gain: 0.5,
            bias: 0.0,
            cap: 2.0,
        };
        assert_eq!(e.estimate(2).count, 1.0);
        assert_eq!(e.estimate(10).count, 2.0); // capped
        let mut under = NoisyEstimator {
            gain: 1.0,
            bias: -3.0,
            cap: f64::INFINITY,
        };
        assert_eq!(under.estimate(1).count, 0.0); // clamped at zero
    }

    #[test]
    fn miss_rate_constructor() {
        let mut e = NoisyEstimator::with_miss_rate(0.25);
        assert!((e.estimate(4).count - 3.0).abs() < 1e-12);
        let mut all = NoisyEstimator::with_miss_rate(0.0);
        assert_eq!(all.estimate(7).count, 7.0);
    }

    #[test]
    #[should_panic]
    fn invalid_miss_rate_rejected() {
        NoisyEstimator::with_miss_rate(1.5);
    }
}
