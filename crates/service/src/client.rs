//! A blocking TCP client for the policy server.

use crate::grid::FamilyKey;
use crate::request::PolicyRequest;
use crate::stats::ServiceStats;
use bytes::BytesMut;
use econcast_proto::service::{
    ServiceCodec, ServiceMessage, WireHello, WireMixSeed, WirePing, WirePolicyError,
    WirePolicyResponse, WireStatsRequest, STATS_SHARD_AGGREGATE,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A handshaken connection to a [`crate::PolicyServer`].
///
/// Batches pipeline all requests before reading any response, so a
/// `serve_batch` call gets server-side batching (and in-batch dedup)
/// for every request the server's read loop picks up together.
/// Responses return in request order regardless of arrival order
/// (correlation ids pair them up).
///
/// ## Failure contract
///
/// Failures are surfaced at two separate levels, and they never mix:
///
/// * **Per-request** failures (validation, size ceiling) arrive as
///   [`WirePolicyError`] entries *inside* a successful
///   [`serve_batch`](PolicyClient::serve_batch) result — the batch's
///   other entries are real responses and safe to use.
/// * **Stream** failures (CRC/framing corruption, version mismatch,
///   disconnect) abort the *call* with an `Err`: no partial result
///   vector is returned, the connection is poisoned (the codec stops
///   at the corrupt frame), and the client must be dropped and
///   re-connected. Results returned by *earlier* completed
///   `serve_batch` calls are unaffected — corruption cannot
///   retroactively poison them, because every response was
///   CRC-checked when it was decoded (pinned by the
///   `corrupt_mid_stream_reply_fails_the_call_not_prior_results`
///   regression test).
#[derive(Debug)]
pub struct PolicyClient {
    stream: TcpStream,
    codec: ServiceCodec,
    shards: u16,
    server_max_batch: u16,
    next_id: u32,
}

/// One batch entry's outcome: the served wire response, or the
/// server's per-request error.
pub type WireResult = Result<WirePolicyResponse, WirePolicyError>;

/// Accumulates one batch's replies by correlation id.
struct Collector {
    base: u32,
    out: Vec<Option<WireResult>>,
    pending: usize,
}

impl Collector {
    fn new(base: u32, len: usize) -> Self {
        Collector {
            base,
            out: vec![None; len],
            pending: len,
        }
    }

    /// Index of the batch entry a reply id belongs to, if any.
    fn slot(&self, id: u32) -> Option<usize> {
        let k = id.wrapping_sub(self.base) as usize;
        (k < self.out.len()).then_some(k)
    }

    /// Files a reply; messages outside the batch are ignored.
    fn absorb(&mut self, msg: ServiceMessage) {
        let filed = match msg {
            ServiceMessage::Response(r) => self
                .slot(r.id)
                .map(|k| (k, self.out[k].replace(Ok(r)).is_none())),
            ServiceMessage::Error(e) => self
                .slot(e.id)
                .map(|k| (k, self.out[k].replace(Err(e)).is_none())),
            _ => None,
        };
        if let Some((_, fresh)) = filed {
            if fresh {
                self.pending -= 1;
            }
        }
    }

    fn done(&self) -> bool {
        self.pending == 0
    }

    fn finish(self) -> Vec<WireResult> {
        self.out
            .into_iter()
            .map(|r| r.expect("collector done"))
            .collect()
    }
}

impl PolicyClient {
    /// Connects and performs the `Hello`/`Welcome` handshake.
    /// `max_batch` is the largest batch this client intends to
    /// pipeline (informational, rides the hello).
    pub fn connect(addr: impl ToSocketAddrs, max_batch: u16) -> std::io::Result<Self> {
        Self::handshake(TcpStream::connect(addr)?, max_batch)
    }

    /// Like [`PolicyClient::connect`], but with `timeout` applied to
    /// the TCP connect **and** to the handshake reads/writes — and
    /// left in force on the connection. Dialers use this: a backend
    /// that accepts but never answers the `Hello` must surface as a
    /// timed-out error, not a connect() that hangs before any
    /// [`set_io_timeout`](PolicyClient::set_io_timeout) call could
    /// take effect.
    pub fn connect_with_timeout(
        addr: std::net::SocketAddr,
        max_batch: u16,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::handshake(stream, max_batch)
    }

    /// Performs the `Hello`/`Welcome` handshake on a connected stream.
    fn handshake(stream: TcpStream, max_batch: u16) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let mut client = PolicyClient {
            stream,
            codec: ServiceCodec::new(),
            shards: 0,
            server_max_batch: 0,
            next_id: 0,
        };
        let id = client.take_id();
        client.send(&ServiceMessage::Hello(WireHello { id, max_batch }))?;
        loop {
            match client.recv()? {
                ServiceMessage::Welcome(w) if w.id == id => {
                    client.shards = w.shards;
                    client.server_max_batch = w.max_batch;
                    return Ok(client);
                }
                // Anything else before the welcome is protocol misuse;
                // skip it rather than wedging the handshake.
                _ => {}
            }
        }
    }

    /// Shard count the server advertised.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// Applies a read/write timeout to the underlying stream (`None`
    /// = block forever). Remote-shard dialers set this so a wedged —
    /// rather than dead — backend surfaces as a timed-out `Err`
    /// instead of a hung cluster.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Round-trips a `Ping`/`Pong` liveness probe, verifying the id
    /// echo. The cluster layer's health checks in one call.
    pub fn ping(&mut self) -> std::io::Result<()> {
        let id = self.take_id();
        self.send(&ServiceMessage::Ping(WirePing { id }))?;
        loop {
            match self.recv()? {
                ServiceMessage::Pong(p) if p.id == id => return Ok(()),
                // Stale replies from earlier traffic are skipped, the
                // same way the handshake tolerates them.
                _ => {}
            }
        }
    }

    /// The server's batch cap from the handshake.
    pub fn server_max_batch(&self) -> u16 {
        self.server_max_batch
    }

    /// Ships a warm-handoff request mix (`MixSeed`, wire v4) and
    /// waits for the ack; returns `(families_absorbed, grids_built)`
    /// as reported by the server. The reshard path uses this to seed
    /// the inheriting shard's prewarmer from the departing owner's
    /// observed heat.
    pub fn seed_mix(&mut self, mix: &[(FamilyKey, u64)]) -> std::io::Result<(u16, u16)> {
        let id = self.take_id();
        self.send(&ServiceMessage::MixSeed(WireMixSeed {
            id,
            families: crate::prewarm::mix_to_wire(mix),
        }))?;
        loop {
            match self.recv()? {
                ServiceMessage::MixAck(a) if a.id == id => {
                    return Ok((a.absorbed, a.grids_built));
                }
                // Stale replies from earlier traffic are skipped, the
                // same way the handshake tolerates them.
                _ => {}
            }
        }
    }

    /// Pipelines every request, draining responses *while* writing —
    /// a client that only wrote first could deadlock against the
    /// server once both directions' socket buffers fill (the server
    /// blocks writing replies the client is not yet reading, the
    /// client blocks writing requests the server is not yet reading).
    /// Replies return in request order.
    pub fn serve_batch(&mut self, reqs: &[PolicyRequest]) -> std::io::Result<Vec<WireResult>> {
        let base = self.next_id;
        self.next_id = self.next_id.wrapping_add(reqs.len() as u32);
        let mut wire = BytesMut::new();
        for (k, req) in reqs.iter().enumerate() {
            ServiceCodec::encode(
                &ServiceMessage::Request(req.to_wire(base.wrapping_add(k as u32))),
                &mut wire,
            );
        }

        let mut batch = Collector::new(base, reqs.len());
        // Phase 1: non-blocking writes, absorbing whatever replies
        // arrive in the meantime. SO_RCVTIMEO/SO_SNDTIMEO do not
        // apply to a non-blocking socket (every call just returns
        // WouldBlock), so the configured read timeout is converted
        // into an explicit deadline for this phase — a backend that
        // accepts but never reads must fail this call with TimedOut,
        // not spin in the retry loop forever.
        let deadline = self
            .stream
            .read_timeout()?
            .map(|t| std::time::Instant::now() + t);
        self.stream.set_nonblocking(true)?;
        let pumped = self.pump(&wire, &mut batch, deadline);
        let restored = self.stream.set_nonblocking(false);
        pumped?;
        restored?;
        // Phase 2: everything is written; block for the rest.
        while !batch.done() {
            batch.absorb(self.recv()?);
        }
        Ok(batch.finish())
    }

    /// Writes `wire` on the (non-blocking) stream, interleaving reads
    /// whenever the send buffer is full. `deadline` (from the
    /// stream's configured timeout) bounds the whole write phase:
    /// blowing it means the peer stopped draining our requests.
    fn pump(
        &mut self,
        wire: &[u8],
        batch: &mut Collector,
        deadline: Option<std::time::Instant>,
    ) -> std::io::Result<()> {
        use std::io::ErrorKind::{Interrupted, WouldBlock};
        let mut buf = [0u8; 16 * 1024];
        let mut written = 0;
        while written < wire.len() {
            match self.stream.write(&wire[written..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "server stopped reading mid-batch",
                    ))
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == Interrupted => {}
                Err(e) if e.kind() == WouldBlock => {
                    if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "server did not drain the batch within the I/O timeout",
                        ));
                    }
                    // Send buffer full: the server must be waiting for
                    // us to drain replies — do that instead.
                    match self.stream.read(&mut buf) {
                        Ok(0) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::UnexpectedEof,
                                "server closed the connection mid-batch",
                            ))
                        }
                        Ok(n) => {
                            self.codec.feed(&buf[..n]);
                            loop {
                                match self.codec.next_message() {
                                    Ok(Some(msg)) => batch.absorb(msg),
                                    Ok(None) => break,
                                    Err(e) => {
                                        return Err(std::io::Error::new(
                                            std::io::ErrorKind::InvalidData,
                                            format!("undecodable server reply: {e:?}"),
                                        ))
                                    }
                                }
                            }
                        }
                        Err(e) if e.kind() == WouldBlock => {
                            // Neither direction ready; yield briefly.
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        Err(e) if e.kind() == Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Fetches one shard's counters (`None` = the aggregate).
    pub fn stats(&mut self, shard: Option<u16>) -> std::io::Result<ServiceStats> {
        let id = self.take_id();
        let shard = shard.unwrap_or(STATS_SHARD_AGGREGATE);
        self.send(&ServiceMessage::StatsRequest(WireStatsRequest {
            id,
            shard,
        }))?;
        loop {
            match self.recv()? {
                ServiceMessage::StatsResponse(r) if r.id == id => {
                    return Ok(ServiceStats::from_wire(&r.stats));
                }
                ServiceMessage::Error(e) if e.id == id => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("server rejected stats request for shard {shard}"),
                    ));
                }
                _ => {}
            }
        }
    }

    fn take_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn send(&mut self, msg: &ServiceMessage) -> std::io::Result<()> {
        let mut wire = BytesMut::new();
        ServiceCodec::encode(msg, &mut wire);
        self.stream.write_all(&wire)
    }

    /// Blocks until the next complete message arrives. Decode errors
    /// surface as `InvalidData`; a server-side disconnect as
    /// `UnexpectedEof`.
    fn recv(&mut self) -> std::io::Result<ServiceMessage> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.codec.next_message() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("undecodable server reply: {e:?}"),
                    ))
                }
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.codec.feed(&buf[..n]);
        }
    }
}
