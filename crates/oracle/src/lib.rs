//! # econcast-oracle — oracle throughput computations (Section IV)
//!
//! The *oracle throughput* `T*` is the optimum of the scheduling LP
//! (P1), achievable only by an omniscient centralized scheduler. The
//! paper reduces (P1) to two LPs with linearly many variables:
//!
//! * **(P2)** — oracle groupput in a clique: maximize `Σ α_i` subject
//!   to the power constraints (9), the single-state constraint (10),
//!   the single-transmitter constraint (11), and the "listen only when
//!   someone transmits" constraint (12). See [`groupput`].
//! * **(P3)** — oracle anyput: maximize `Σ β_i` with the reception-
//!   share variables `χ_{i,j}` and constraints (14)–(15) ensuring every
//!   transmission has at least one listener. See [`anyput`].
//! * **Non-cliques** (Section IV-C): upper and lower bounds on the
//!   maximum groupput obtained from neighborhood-restricted variants of
//!   (P2); the Fig. 6 grids make the two coincide, giving the exact
//!   `T*_nc`. See [`non_clique`].
//!
//! * **Achievability gap** ([`gap`]) — weak-duality certificates
//!   `T^σ ≤ T* ≤ D(η)` computed with the statespace crate's reusable
//!   (P4) workspace, cross-validating the simplex and Gibbs code paths
//!   against each other.
//!
//! Closed-form solutions for homogeneous networks (Appendix B) are
//! provided alongside and are cross-checked against the LP solver in
//! tests.

pub mod anyput;
pub mod gap;
pub mod groupput;
pub mod non_clique;
mod solution;

pub use anyput::{oracle_anyput, oracle_anyput_homogeneous};
pub use gap::{
    achievability_gap, certificate_for, certificate_for_homogeneous, oracle_throughput_for,
    sigma_frontier, AchievabilityGap,
};
pub use groupput::{oracle_groupput, oracle_groupput_homogeneous};
pub use non_clique::{non_clique_anyput_bounds, non_clique_groupput_bounds, NonCliqueBounds};
pub use solution::OracleSolution;
