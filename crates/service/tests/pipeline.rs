//! Pipelined data-plane acceptance tests: multiple correlation groups
//! in flight on one connection must collect out of order, interleave
//! arbitrarily on the wire, fail independently under mid-stream
//! corruption, and gather bit-identically in request order regardless
//! of server worker count.

use econcast_proto::service::{ServiceCodec, ServiceMessage, WirePolicy, WirePolicyResponse};
use econcast_service::workload::mixed_batch;
use econcast_service::{
    PolicyClient, PolicyRequest, PolicyResponse, PolicyServer, PolicyService, RouterConfig,
    ServerConfig, ServiceConfig, ServiceError,
};
use std::io::{Read, Write};

fn server(shards: usize, workers: usize) -> ServerConfig {
    ServerConfig {
        router: RouterConfig {
            shards,
            service: ServiceConfig {
                workers: Some(workers),
                ..ServiceConfig::default()
            },
            ..RouterConfig::default()
        },
        background_prewarm: false,
        ..ServerConfig::default()
    }
}

/// Payload bits must match the in-process reference exactly; the tier
/// label may alias to `Exact` when the server replays a solve from its
/// LRU (see the socket suite for the rationale).
fn assert_bit_identical(
    got: &[Result<
        econcast_proto::service::WirePolicyResponse,
        econcast_proto::service::WirePolicyError,
    >],
    expected: &[Result<PolicyResponse, ServiceError>],
    label: &str,
) {
    assert_eq!(got.len(), expected.len(), "{label}: length");
    for (i, (wire, exp)) in got.iter().zip(expected).enumerate() {
        let (wire, exp) = (
            wire.as_ref()
                .unwrap_or_else(|e| panic!("{label} req {i}: {e:?}")),
            exp.as_ref().expect("reference served"),
        );
        assert_eq!(wire.policies.len(), exp.policies.len(), "{label} req {i}");
        for (wp, np) in wire.policies.iter().zip(&exp.policies) {
            assert_eq!(wp.listen.to_bits(), np.listen.to_bits(), "{label} req {i}");
            assert_eq!(
                wp.transmit.to_bits(),
                np.transmit.to_bits(),
                "{label} req {i}"
            );
        }
        assert_eq!(
            wire.throughput.to_bits(),
            exp.throughput.to_bits(),
            "{label} req {i}"
        );
        assert_eq!(
            wire.cert_t_sigma.to_bits(),
            exp.certificate.t_sigma.to_bits(),
            "{label} req {i}"
        );
        assert_eq!(
            wire.cert_oracle.to_bits(),
            exp.certificate.oracle.to_bits(),
            "{label} req {i}"
        );
        assert_eq!(
            wire.cert_dual_upper.to_bits(),
            exp.certificate.dual_upper.to_bits(),
            "{label} req {i}"
        );
        assert_eq!(wire.converged, exp.converged, "{label} req {i}");
    }
}

#[test]
fn tickets_collect_in_every_permutation_order() {
    // Three batches in flight on one connection; collecting the
    // tickets in any of the 6 permutation orders yields each batch's
    // replies in its own request order, bit-identical to the
    // in-process service. Property-style: every permutation runs
    // against live pipelined TCP.
    let whole = mixed_batch(18);
    let chunks: Vec<&[PolicyRequest]> = whole.chunks(6).collect();

    let mut single = PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    });
    let expected: Vec<Vec<Result<PolicyResponse, ServiceError>>> =
        chunks.iter().map(|c| single.serve_batch(c)).collect();

    let handle = PolicyServer::bind("127.0.0.1:0", server(2, 1))
        .expect("bind")
        .spawn();
    let mut client = PolicyClient::connect(handle.addr(), 6).expect("connect");

    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for perm in PERMS {
        let tickets: Vec<_> = chunks
            .iter()
            .map(|c| client.submit_batch(c).expect("submit"))
            .collect();
        // Redeem out of submission order: replies for not-yet-asked
        // tickets get filed while an earlier collect drains the wire.
        let mut got: Vec<Option<_>> = vec![None, None, None];
        for &k in &perm {
            got[k] = Some(client.collect(tickets[k]).expect("collect"));
        }
        for k in 0..3 {
            assert_bit_identical(
                got[k].as_ref().unwrap(),
                &expected[k],
                &format!("perm {perm:?} batch {k}"),
            );
        }
    }

    drop(client);
    handle.shutdown();
}

/// A hand-rolled server that answers a fixed number of requests in a
/// caller-chosen order (indices into arrival order), tagging each
/// reply's throughput with its request id, then optionally appends
/// `tail` raw bytes and either keeps the connection open or closes it.
fn interleaving_fake_server(
    expect: usize,
    reply_order: Vec<usize>,
    corrupt_last: bool,
    truncate_tail: bool,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut codec = ServiceCodec::new();
        let mut buf = [0u8; 64 * 1024];
        let mut requests = Vec::new();
        while requests.len() < expect {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            let Ok(messages) = codec.drain() else { return };
            let mut out = bytes::BytesMut::new();
            for msg in messages {
                match msg {
                    ServiceMessage::Hello(h) => ServiceCodec::encode(
                        &ServiceMessage::Welcome(econcast_proto::service::WireWelcome {
                            id: h.id,
                            shards: 1,
                            max_batch: 64,
                        }),
                        &mut out,
                    ),
                    ServiceMessage::Request(r) => requests.push(r),
                    _ => {}
                }
            }
            if !out.is_empty() && stream.write_all(&out).is_err() {
                return;
            }
        }
        // Every expected request arrived (both tickets are in flight
        // client-side). Reply in the chosen interleaving.
        let mut out = bytes::BytesMut::new();
        for (k, &i) in reply_order.iter().enumerate() {
            let r = &requests[i];
            let reply = ServiceMessage::Response(WirePolicyResponse {
                corr: r.corr,
                id: r.id,
                tier: econcast_service::ServedTier::Exact,
                kernel: econcast_service::PolicyKernel::ClosedForm,
                converged: true,
                throughput: f64::from(r.id),
                cert_t_sigma: 1.0,
                cert_oracle: 2.0,
                cert_dual_upper: 3.0,
                policies: r
                    .budgets_w
                    .iter()
                    .map(|_| WirePolicy {
                        listen: 0.1,
                        transmit: 0.01,
                    })
                    .collect(),
            });
            if corrupt_last && k + 1 == reply_order.len() {
                // Correctly length-prefixed frame whose body fails CRC.
                let mut corrupt = bytes::BytesMut::new();
                ServiceCodec::encode(&reply, &mut corrupt);
                let last = corrupt.len() - 1;
                corrupt[last] ^= 0xFF;
                out.extend_from_slice(&corrupt);
            } else if truncate_tail && k + 1 == reply_order.len() {
                // Length prefix promises a frame; only half arrives
                // before the connection dies.
                let mut whole = bytes::BytesMut::new();
                ServiceCodec::encode(&reply, &mut whole);
                out.extend_from_slice(&whole[..whole.len() / 2]);
            } else {
                ServiceCodec::encode(&reply, &mut out);
            }
        }
        let _ = stream.write_all(&out);
        if truncate_tail {
            return; // close: the promised bytes never come
        }
        // Keep the connection open so errors are decode errors, not
        // EOF; drain until the client hangs up.
        while !matches!(stream.read(&mut buf), Ok(0) | Err(_)) {}
    });
    (addr, handle)
}

#[test]
fn replies_interleave_across_correlation_ids() {
    // Two tickets of 3; the server answers in an order that both
    // interleaves the correlation groups and reverses within each
    // group. Each collect still returns its own batch in request
    // order, identified by the id echoed through the throughput tag.
    let (addr, fake) = interleaving_fake_server(6, vec![5, 0, 3, 2, 1, 4], false, false);
    let batch = mixed_batch(3);
    let mut client = PolicyClient::connect(addr, 3).expect("connect");

    let t1 = client.submit_batch(&batch).expect("submit 1");
    let t2 = client.submit_batch(&batch).expect("submit 2");
    // Collect in reverse submission order for good measure.
    let got2 = client.collect(t2).expect("collect 2");
    let got1 = client.collect(t1).expect("collect 1");

    let ids = |got: &[econcast_service::WireResult]| -> Vec<f64> {
        got.iter()
            .map(|r| r.as_ref().expect("served").throughput)
            .collect()
    };
    let (ids1, ids2) = (ids(&got1), ids(&got2));
    // Request order within each ticket: consecutive ascending ids,
    // with ticket 2's ids following ticket 1's.
    assert_eq!(ids1[1], ids1[0] + 1.0);
    assert_eq!(ids1[2], ids1[0] + 2.0);
    assert_eq!(ids2[0], ids1[0] + 3.0);
    assert_eq!(ids2[1], ids1[0] + 4.0);
    assert_eq!(ids2[2], ids1[0] + 5.0);

    drop(client);
    fake.join().expect("fake server");
}

#[test]
fn mid_pipeline_corruption_fails_only_the_affected_ticket() {
    // Ticket 1's replies all arrive intact; ticket 2's second reply is
    // a CRC-corrupt frame. Collecting ticket 1 succeeds with full
    // results; collecting ticket 2 errors — the corruption takes down
    // exactly the call it belongs to.
    let (addr, fake) = interleaving_fake_server(4, vec![0, 1, 2, 3], true, false);
    let batch = mixed_batch(2);
    let mut client = PolicyClient::connect(addr, 2).expect("connect");

    let t1 = client.submit_batch(&batch).expect("submit 1");
    let t2 = client.submit_batch(&batch).expect("submit 2");
    let got1 = client.collect(t1).expect("ticket 1 is unaffected");
    assert_eq!(got1.len(), 2);
    assert!(got1.iter().all(|r| r.is_ok()));
    let err = client
        .collect(t2)
        .expect_err("ticket 2 hits the corrupt frame");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    drop(client);
    fake.join().expect("fake server");
}

#[test]
fn mid_pipeline_truncation_fails_only_the_affected_ticket() {
    // Same shape, but ticket 2's second reply is cut in half and the
    // connection closes. Ticket 1 collects cleanly from the buffered
    // intact frames; ticket 2 surfaces the truncation as EOF.
    let (addr, fake) = interleaving_fake_server(4, vec![0, 1, 2, 3], false, true);
    let batch = mixed_batch(2);
    let mut client = PolicyClient::connect(addr, 2).expect("connect");

    let t1 = client.submit_batch(&batch).expect("submit 1");
    let t2 = client.submit_batch(&batch).expect("submit 2");
    let got1 = client.collect(t1).expect("ticket 1 is unaffected");
    assert_eq!(got1.len(), 2);
    assert!(got1.iter().all(|r| r.is_ok()));
    let err = client
        .collect(t2)
        .expect_err("ticket 2 hits the truncation");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

    drop(client);
    fake.join().expect("fake server");
}

#[test]
fn request_order_gathering_is_bit_identical_across_worker_counts() {
    // The pinned determinism invariant extended to the pipelined
    // path: at 1, 2, and 4 workers per shard, two in-flight tickets
    // collected in reverse order gather bit-identical results.
    let whole = mixed_batch(32);
    let (a, b) = whole.split_at(16);

    let mut single = PolicyService::new(ServiceConfig {
        workers: Some(1),
        ..ServiceConfig::default()
    });
    let expected_a = single.serve_batch(a);
    let expected_b = single.serve_batch(b);

    for workers in [1usize, 2, 4] {
        let handle = PolicyServer::bind("127.0.0.1:0", server(2, workers))
            .expect("bind")
            .spawn();
        let mut client = PolicyClient::connect(handle.addr(), 16).expect("connect");
        let ta = client.submit_batch(a).expect("submit a");
        let tb = client.submit_batch(b).expect("submit b");
        let got_b = client.collect(tb).expect("collect b");
        let got_a = client.collect(ta).expect("collect a");
        assert_bit_identical(&got_a, &expected_a, &format!("workers={workers} batch a"));
        assert_bit_identical(&got_b, &expected_b, &format!("workers={workers} batch b"));
        drop(client);
        handle.shutdown();
    }
}
