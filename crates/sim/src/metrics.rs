//! Measurement collection: throughput, burstiness, latency, and the
//! per-node power audit of Section VIII-B.

/// Per-node accumulated statistics over the measurement window.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Time spent in each state (packet-time units).
    pub time_sleep: f64,
    /// Listen time (includes receiving and ping intervals).
    pub time_listen: f64,
    /// Transmit time.
    pub time_transmit: f64,
    /// Physical energy consumed, *including* the unmodeled awake
    /// overhead (`overhead_w`) — what a capacitor-discharge measurement
    /// like Section VIII-B's eq. (25)–(26) would report.
    pub energy_consumed: f64,
    /// Energy the protocol's own model accounts for (sleep/listen/
    /// transmit at the programmed `L`/`X`) — what the node's *virtual
    /// battery* sees and what drives the multiplier update (17).
    pub protocol_energy_consumed: f64,
    /// Unit packets sent.
    pub packets_sent: u64,
    /// Unit packets successfully received.
    pub packets_received: u64,
    /// Completed receive bursts (count, total packets) — a burst is the
    /// run of packets received before exiting the listen state
    /// (Section VII-D).
    pub bursts: u64,
    /// Total packets across completed bursts.
    pub burst_packets: u64,
    /// Latency samples: gaps between consecutive received bursts that
    /// contain at least one sleep period (Section VII-D).
    pub latency_samples: Vec<f64>,
    /// Final multiplier value at the end of the run.
    pub final_eta: f64,
}

impl NodeStats {
    /// Average received-burst length in packets.
    pub fn mean_burst_length(&self) -> Option<f64> {
        (self.bursts > 0).then(|| self.burst_packets as f64 / self.bursts as f64)
    }

    /// Average physical power over `elapsed` time (same power unit as
    /// config), overhead included.
    pub fn average_power(&self, elapsed: f64) -> f64 {
        if elapsed > 0.0 {
            self.energy_consumed / elapsed
        } else {
            0.0
        }
    }

    /// Average protocol-visible (virtual battery) power — the quantity
    /// Fig. 7's "Battery Variance" normalizes against the budget.
    pub fn average_protocol_power(&self, elapsed: f64) -> f64 {
        if elapsed > 0.0 {
            self.protocol_energy_consumed / elapsed
        } else {
            0.0
        }
    }

    /// Fraction of time awake.
    pub fn awake_fraction(&self, elapsed: f64) -> f64 {
        if elapsed > 0.0 {
            (self.time_listen + self.time_transmit) / elapsed
        } else {
            0.0
        }
    }
}

/// Summary statistics over a latency sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencySummary {
    /// Builds a summary from raw samples. Returns `None` when empty.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are never NaN"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(LatencySummary {
            count: sorted.len(),
            mean,
            p50: percentile(&sorted, 0.50),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Nearest-rank percentile over a pre-sorted ascending slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One successful packet delivery (recorded only when
/// `SimConfig::record_deliveries` is set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Packet end time.
    pub time: f64,
    /// Transmitting node.
    pub source: usize,
    /// Bitmask of nodes that received the packet.
    pub receivers: u64,
}

impl Delivery {
    /// Iterates over receiver indices.
    pub fn receiver_ids(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.receivers;
        (0..64).filter(move |i| mask & (1 << i) != 0)
    }
}

/// The full outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measurement-window length (t_end − warmup).
    pub elapsed: f64,
    /// Invalidated timers discarded by the event queue over the whole
    /// run (lazily at pop plus eagerly by compaction) — a health
    /// metric for the lazy-invalidation scheme.
    pub stale_events_dropped: u64,
    /// Number of event-heap compaction passes performed.
    pub heap_compactions: u64,
    /// Groupput: receiver-packets delivered per unit time (Def. 1).
    pub groupput: f64,
    /// Anyput: packets with ≥1 receiver per unit time (Def. 2).
    pub anyput: f64,
    /// Unit packets transmitted in the window.
    pub packets_transmitted: u64,
    /// Packets that reached at least one receiver.
    pub packets_delivered: u64,
    /// Packets lost to overlapping transmissions at every prospective
    /// receiver (non-clique only; always 0 in cliques).
    pub packets_collided: u64,
    /// Histogram of decoded ping counts after each packet transmission
    /// (`ping_histogram[k]` = packets followed by `k` decoded pings) —
    /// the raw data of Table IV. Populated only when a ping interval is
    /// configured.
    pub ping_histogram: Vec<u64>,
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
    /// Optional delivery log (empty unless requested).
    pub deliveries: Vec<Delivery>,
}

impl SimReport {
    /// Network-wide mean received-burst length.
    pub fn mean_burst_length(&self) -> Option<f64> {
        let (bursts, packets) = self.nodes.iter().fold((0u64, 0u64), |(b, p), n| {
            (b + n.bursts, p + n.burst_packets)
        });
        (bursts > 0).then(|| packets as f64 / bursts as f64)
    }

    /// Pooled latency summary across all nodes.
    pub fn latency_summary(&self) -> Option<LatencySummary> {
        let all: Vec<f64> = self
            .nodes
            .iter()
            .flat_map(|n| n.latency_samples.iter().copied())
            .collect();
        LatencySummary::from_samples(&all)
    }

    /// Pooled latency CDF: sorted samples paired with cumulative
    /// probability, for plotting Fig. 5.
    pub fn latency_cdf(&self) -> Vec<(f64, f64)> {
        let mut all: Vec<f64> = self
            .nodes
            .iter()
            .flat_map(|n| n.latency_samples.iter().copied())
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let n = all.len().max(1) as f64;
        all.iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// The Table IV distribution: fraction of packet transmissions
    /// followed by `k` decoded pings, `k = 0..`. Empty when no ping
    /// interval was configured.
    pub fn ping_distribution(&self) -> Vec<f64> {
        let total: u64 = self.ping_histogram.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.ping_histogram
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Worst relative power-budget overshoot across nodes:
    /// `max_i (avg_power_i − ρ_i)/ρ_i` (can be negative when everyone
    /// under-spends).
    pub fn max_budget_overshoot(&self, budgets: &[f64]) -> f64 {
        self.nodes
            .iter()
            .zip(budgets)
            .map(|(n, &rho)| (n.average_power(self.elapsed) - rho) / rho)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 10.0);
    }

    #[test]
    fn latency_summary_from_samples() {
        let s = LatencySummary::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(LatencySummary::from_samples(&[]), None);
    }

    #[test]
    fn node_stats_derived_values() {
        let mut n = NodeStats::default();
        n.bursts = 4;
        n.burst_packets = 10;
        n.energy_consumed = 50.0;
        n.time_listen = 3.0;
        n.time_transmit = 1.0;
        assert_eq!(n.mean_burst_length(), Some(2.5));
        assert_eq!(n.average_power(100.0), 0.5);
        assert_eq!(n.awake_fraction(100.0), 0.04);
        assert_eq!(NodeStats::default().mean_burst_length(), None);
    }

    #[test]
    fn report_pooling() {
        let mut a = NodeStats::default();
        a.bursts = 1;
        a.burst_packets = 4;
        a.latency_samples = vec![10.0];
        let mut b = NodeStats::default();
        b.bursts = 3;
        b.burst_packets = 4;
        b.latency_samples = vec![20.0, 30.0];
        let r = SimReport {
            elapsed: 100.0,
            stale_events_dropped: 0,
            heap_compactions: 0,
            groupput: 0.0,
            anyput: 0.0,
            packets_transmitted: 0,
            packets_delivered: 0,
            packets_collided: 0,
            ping_histogram: vec![],
            nodes: vec![a, b],
            deliveries: vec![],
        };
        assert_eq!(r.mean_burst_length(), Some(2.0));
        let lat = r.latency_summary().unwrap();
        assert_eq!(lat.count, 3);
        assert!((lat.mean - 20.0).abs() < 1e-12);
        let cdf = r.latency_cdf();
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_overshoot() {
        let mut n = NodeStats::default();
        n.energy_consumed = 110.0; // avg power 1.1 over elapsed 100
        let r = SimReport {
            elapsed: 100.0,
            stale_events_dropped: 0,
            heap_compactions: 0,
            groupput: 0.0,
            anyput: 0.0,
            packets_transmitted: 0,
            packets_delivered: 0,
            packets_collided: 0,
            ping_histogram: vec![],
            nodes: vec![n],
            deliveries: vec![],
        };
        assert!((r.max_budget_overshoot(&[1.0]) - 0.1).abs() < 1e-12);
    }
}
