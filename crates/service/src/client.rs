//! A blocking TCP client for the policy server, with a pipelined
//! submit/collect data plane.

use crate::grid::FamilyKey;
use crate::ready;
use crate::request::PolicyRequest;
use crate::stats::ServiceStats;
use econcast_proto::service::{
    ScatterEncoder, ServiceCodec, ServiceMessage, WireHello, WireMetricsRequest, WireMixSeed,
    WirePing, WirePolicyError, WirePolicyResponse, WireStatsRequest, METRICS_WIRE_VERSION,
    MIN_WIRE_VERSION, STATS_SHARD_AGGREGATE, WIRE_VERSION,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A handshaken connection to a [`crate::PolicyServer`].
///
/// The data plane is pipelined:
/// [`submit_batch`](PolicyClient::submit_batch) frames a batch into
/// the connection's reusable scatter buffer, stamps every request
/// with one fresh wire-v5 correlation id, flushes it (absorbing any
/// replies that arrive meanwhile), and returns a [`Ticket`];
/// [`collect`](PolicyClient::collect) blocks until that ticket's
/// batch completed. Several tickets may be in flight on one
/// connection, their replies interleaved arbitrarily — the
/// correlation id routes each reply to its batch, and per-request ids
/// restore request order within the batch.
/// [`serve_batch`](PolicyClient::serve_batch) is the classic
/// submit-then-collect convenience and behaves exactly like the
/// pre-pipeline call.
///
/// On connect the client offers [`WIRE_VERSION`] and falls back to a
/// v4 redial when the server hangs up on the unknown version — so a
/// new client talks to an old server (corr rides as 0 and replies
/// demultiplex by id range), and an old client's v4 frames still
/// decode on a new server, which answers in kind.
///
/// ## Failure contract
///
/// Failures are surfaced at two separate levels, and they never mix:
///
/// * **Per-request** failures (validation, size ceiling) arrive as
///   [`WirePolicyError`] entries *inside* a successful
///   [`serve_batch`](PolicyClient::serve_batch) result — the batch's
///   other entries are real responses and safe to use.
/// * **Stream** failures (CRC/framing corruption, version mismatch,
///   disconnect) abort the *call* with an `Err`: no partial result
///   vector is returned, the connection is poisoned (the codec stops
///   at the corrupt frame), and the client must be dropped and
///   re-connected. Results returned by *earlier* completed
///   `serve_batch`/`collect` calls are unaffected — corruption cannot
///   retroactively poison them, because every response was
///   CRC-checked when it was decoded (pinned by the
///   `corrupt_mid_stream_reply_fails_the_call_not_prior_results`
///   regression test).
#[derive(Debug)]
pub struct PolicyClient {
    stream: TcpStream,
    codec: ServiceCodec,
    enc: ScatterEncoder,
    pending: Vec<PendingBatch>,
    shards: u16,
    server_max_batch: u16,
    next_id: u32,
    next_corr: u32,
    wire_version: u8,
}

/// One batch entry's outcome: the served wire response, or the
/// server's per-request error.
pub type WireResult = Result<WirePolicyResponse, WirePolicyError>;

/// Handle to one submitted, not-yet-collected batch. Redeem with
/// [`PolicyClient::collect`] (blocking) or poll with
/// [`PolicyClient::try_collect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    corr: u32,
}

/// One in-flight batch: its correlation id plus the collector filing
/// its replies.
#[derive(Debug)]
struct PendingBatch {
    corr: u32,
    collector: Collector,
}

/// Accumulates one batch's replies in request order.
#[derive(Debug)]
struct Collector {
    base: u32,
    out: Vec<Option<WireResult>>,
    pending: usize,
}

impl Collector {
    fn new(base: u32, len: usize) -> Self {
        Collector {
            base,
            out: vec![None; len],
            pending: len,
        }
    }

    /// Index of the batch entry a reply id belongs to, if any.
    fn slot(&self, id: u32) -> Option<usize> {
        let k = id.wrapping_sub(self.base) as usize;
        (k < self.out.len()).then_some(k)
    }

    /// Whether a reply id falls inside this batch's id range — the
    /// v4 demultiplexer (no correlation id on the wire).
    fn owns(&self, id: u32) -> bool {
        self.slot(id).is_some()
    }

    /// Files a reply; ids outside the batch are ignored.
    fn file(&mut self, id: u32, result: WireResult) {
        if let Some(k) = self.slot(id) {
            if self.out[k].replace(result).is_none() {
                self.pending -= 1;
            }
        }
    }

    fn done(&self) -> bool {
        self.pending == 0
    }

    fn finish(self) -> Vec<WireResult> {
        self.out
            .into_iter()
            .map(|r| r.expect("collector done"))
            .collect()
    }
}

impl PolicyClient {
    /// Connects and performs the `Hello`/`Welcome` handshake, offering
    /// the current wire version and redialing at v4 when the server
    /// turns out to be an older binary (which drops the unknown-version
    /// hello without a reply). `max_batch` is the largest batch this
    /// client intends to pipeline (informational, rides the hello).
    pub fn connect(addr: impl ToSocketAddrs, max_batch: u16) -> std::io::Result<Self> {
        match Self::handshake(TcpStream::connect(&addr)?, max_batch, WIRE_VERSION) {
            Err(e) if handshake_version_rejected(&e) => {
                Self::handshake(TcpStream::connect(&addr)?, max_batch, MIN_WIRE_VERSION)
            }
            other => other,
        }
    }

    /// Connects offering an explicit wire version, with no fallback —
    /// the cross-version interop knob: `connect_versioned(addr, b, 4)`
    /// behaves on the wire exactly like a v4-era client binary.
    pub fn connect_versioned(
        addr: impl ToSocketAddrs,
        max_batch: u16,
        version: u8,
    ) -> std::io::Result<Self> {
        Self::handshake(TcpStream::connect(&addr)?, max_batch, version)
    }

    /// Like [`PolicyClient::connect`], but with `timeout` applied to
    /// the TCP connect **and** to the handshake reads/writes — and
    /// left in force on the connection. Dialers use this: a backend
    /// that accepts but never answers the `Hello` must surface as a
    /// timed-out error, not a connect() that hangs before any
    /// [`set_io_timeout`](PolicyClient::set_io_timeout) call could
    /// take effect.
    pub fn connect_with_timeout(
        addr: std::net::SocketAddr,
        max_batch: u16,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let dial = |version: u8| -> std::io::Result<Self> {
            let stream = TcpStream::connect_timeout(&addr, timeout)?;
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
            Self::handshake(stream, max_batch, version)
        };
        match dial(WIRE_VERSION) {
            Err(e) if handshake_version_rejected(&e) => dial(MIN_WIRE_VERSION),
            other => other,
        }
    }

    /// Performs the `Hello`/`Welcome` handshake on a connected stream,
    /// offering `version`. The negotiated connection version is the
    /// minimum of the offer and what the welcome came stamped with.
    fn handshake(stream: TcpStream, max_batch: u16, version: u8) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let mut client = PolicyClient {
            stream,
            codec: ServiceCodec::new(),
            enc: ScatterEncoder::new(),
            pending: Vec::new(),
            shards: 0,
            server_max_batch: 0,
            next_id: 0,
            next_corr: 1,
            wire_version: version,
        };
        if version < WIRE_VERSION {
            // A client pinned to an old version must also *reject*
            // newer frames, like the real old binary would.
            client.codec.set_max_version(version);
        }
        let id = client.take_id();
        client.send(&ServiceMessage::Hello(WireHello { id, max_batch }))?;
        loop {
            match client.recv()? {
                ServiceMessage::Welcome(w) if w.id == id => {
                    client.shards = w.shards;
                    client.server_max_batch = w.max_batch;
                    // The server echoes the version it will speak; a
                    // v4 welcome downgrades the connection.
                    if let Some(peer) = client.codec.peer_version() {
                        client.wire_version = client.wire_version.min(peer);
                    }
                    return Ok(client);
                }
                // Anything else before the welcome is protocol misuse;
                // skip it rather than wedging the handshake.
                _ => {}
            }
        }
    }

    /// Shard count the server advertised.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The wire version this connection negotiated.
    pub fn wire_version(&self) -> u8 {
        self.wire_version
    }

    /// Applies a read/write timeout to the underlying stream (`None`
    /// = block forever). Remote-shard dialers set this so a wedged —
    /// rather than dead — backend surfaces as a timed-out `Err`
    /// instead of a hung cluster.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// The raw socket descriptor, for readiness multiplexing across
    /// connections ([`crate::ready::wait`]).
    pub fn poll_fd(&self) -> ready::RawFdAlias {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            self.stream.as_raw_fd()
        }
        #[cfg(not(unix))]
        {
            0
        }
    }

    /// Round-trips a `Ping`/`Pong` liveness probe, verifying the id
    /// echo. The cluster layer's health checks in one call.
    pub fn ping(&mut self) -> std::io::Result<()> {
        let id = self.take_id();
        self.send(&ServiceMessage::Ping(WirePing { id }))?;
        loop {
            match self.recv()? {
                ServiceMessage::Pong(p) if p.id == id => return Ok(()),
                // Data-plane replies for in-flight tickets are filed,
                // not dropped; other strays are skipped like the
                // handshake does.
                other => self.dispatch(other),
            }
        }
    }

    /// The server's batch cap from the handshake.
    pub fn server_max_batch(&self) -> u16 {
        self.server_max_batch
    }

    /// Ships a warm-handoff request mix (`MixSeed`, wire v4) and
    /// waits for the ack; returns `(families_absorbed, grids_built)`
    /// as reported by the server. The reshard path uses this to seed
    /// the inheriting shard's prewarmer from the departing owner's
    /// observed heat.
    pub fn seed_mix(&mut self, mix: &[(FamilyKey, u64)]) -> std::io::Result<(u16, u16)> {
        let id = self.take_id();
        self.send(&ServiceMessage::MixSeed(WireMixSeed {
            id,
            families: crate::prewarm::mix_to_wire(mix),
        }))?;
        loop {
            match self.recv()? {
                ServiceMessage::MixAck(a) if a.id == id => {
                    return Ok((a.absorbed, a.grids_built));
                }
                other => self.dispatch(other),
            }
        }
    }

    /// Submits one batch without waiting for its replies: frames every
    /// request (stamped with a fresh correlation id) into the
    /// connection's reusable scatter buffer and flushes it, absorbing
    /// any replies — for *any* in-flight ticket — that arrive while
    /// the send buffer drains. Returns the ticket to redeem with
    /// [`collect`](PolicyClient::collect) or
    /// [`try_collect`](PolicyClient::try_collect).
    pub fn submit_batch(&mut self, reqs: &[PolicyRequest]) -> std::io::Result<Ticket> {
        self.submit_batch_deadline(reqs, None)
    }

    /// [`submit_batch`](PolicyClient::submit_batch) with a deadline
    /// budget stamped on every request (wire v6): the server sheds —
    /// with an explicit `Overloaded` — any request it cannot answer
    /// within `deadline` of receiving it, rather than serving it
    /// late. On a pre-v6 connection the stamp has no wire slot and is
    /// silently dropped, like a v6 server talking to a v5 one.
    pub fn submit_batch_deadline(
        &mut self,
        reqs: &[PolicyRequest],
        deadline: Option<Duration>,
    ) -> std::io::Result<Ticket> {
        let deadline_us = deadline
            .map(|d| d.as_micros().min(u128::from(u32::MAX)) as u32)
            .unwrap_or(0);
        let base = self.next_id;
        self.next_id = self.next_id.wrapping_add(reqs.len() as u32);
        let corr = self.take_corr();
        let msgs: Vec<ServiceMessage> = reqs
            .iter()
            .enumerate()
            .map(|(k, req)| {
                let mut w = req.to_wire(base.wrapping_add(k as u32));
                w.corr = corr;
                w.deadline_us = deadline_us;
                ServiceMessage::Request(w)
            })
            .collect();
        self.enc.push_all(&msgs, self.wire_version);
        self.pending.push(PendingBatch {
            corr,
            collector: Collector::new(base, reqs.len()),
        });
        self.flush()?;
        Ok(Ticket { corr })
    }

    /// Blocks until the ticket's batch fully completed, filing replies
    /// for every in-flight ticket along the way. Replies return in
    /// the batch's request order regardless of arrival order.
    pub fn collect(&mut self, ticket: Ticket) -> std::io::Result<Vec<WireResult>> {
        loop {
            let Some(k) = self.pending.iter().position(|b| b.corr == ticket.corr) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "unknown or already collected ticket",
                ));
            };
            if self.pending[k].collector.done() {
                return Ok(self.pending.remove(k).collector.finish());
            }
            let msg = self.recv()?;
            self.dispatch(msg);
        }
    }

    /// Non-blocking collect: drains whatever replies are currently
    /// readable, then reports whether the ticket's batch completed.
    /// `Ok(None)` means "not yet — poll the socket and retry"; the
    /// cluster's connection driver multiplexes every backend this way
    /// on one thread.
    pub fn try_collect(&mut self, ticket: &Ticket) -> std::io::Result<Option<Vec<WireResult>>> {
        self.stream.set_nonblocking(true)?;
        let drained = self.drain_ready();
        let restored = self.stream.set_nonblocking(false);
        drained?;
        restored?;
        let Some(k) = self.pending.iter().position(|b| b.corr == ticket.corr) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "unknown or already collected ticket",
            ));
        };
        if self.pending[k].collector.done() {
            return Ok(Some(self.pending.remove(k).collector.finish()));
        }
        Ok(None)
    }

    /// Pipelines every request and waits for the full batch: exactly
    /// [`submit_batch`](PolicyClient::submit_batch) followed by
    /// [`collect`](PolicyClient::collect). Replies return in request
    /// order.
    pub fn serve_batch(&mut self, reqs: &[PolicyRequest]) -> std::io::Result<Vec<WireResult>> {
        let ticket = self.submit_batch(reqs)?;
        self.collect(ticket)
    }

    /// Flushes the scatter buffer, interleaving reads whenever the
    /// send buffer is full — a client that only wrote first could
    /// deadlock against the server once both directions' socket
    /// buffers fill. The stream's configured read timeout bounds the
    /// whole write phase (SO_SNDTIMEO does not apply to a
    /// non-blocking socket, so the deadline is explicit): blowing it
    /// means the peer stopped draining our requests.
    fn flush(&mut self) -> std::io::Result<()> {
        if self.enc.is_drained() {
            return Ok(());
        }
        let deadline = self
            .stream
            .read_timeout()?
            .map(|t| std::time::Instant::now() + t);
        self.stream.set_nonblocking(true)?;
        let pumped = self.pump(deadline);
        let restored = self.stream.set_nonblocking(false);
        pumped?;
        restored?;
        Ok(())
    }

    /// The non-blocking write/absorb loop behind
    /// [`flush`](PolicyClient::flush): writes park in `poll(2)` until
    /// the socket turns writable (or readable — replies get absorbed
    /// first), instead of the fixed short sleeps of the pre-pipeline
    /// pump.
    fn pump(&mut self, deadline: Option<std::time::Instant>) -> std::io::Result<()> {
        use std::io::ErrorKind::{Interrupted, WouldBlock};
        while !self.enc.is_drained() {
            match (&self.stream).write(self.enc.pending()) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "server stopped reading mid-batch",
                    ))
                }
                Ok(n) => self.enc.advance(n),
                Err(e) if e.kind() == Interrupted => {}
                Err(e) if e.kind() == WouldBlock => {
                    if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "server did not drain the batch within the I/O timeout",
                        ));
                    }
                    // Send buffer full: the server is probably waiting
                    // for us to drain replies — absorb whatever is
                    // readable, then park until either direction moves.
                    if !self.drain_ready()? {
                        let remaining = deadline
                            .map(|d| d.saturating_duration_since(std::time::Instant::now()));
                        ready::wait_one(
                            self.poll_fd(),
                            ready::READABLE | ready::WRITABLE,
                            remaining,
                        )?;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Reads everything currently available (stream must be in
    /// non-blocking mode), filing data-plane replies to their
    /// in-flight batches. Returns whether any bytes arrived.
    fn drain_ready(&mut self) -> std::io::Result<bool> {
        use std::io::ErrorKind::{Interrupted, WouldBlock};
        let mut buf = [0u8; 64 * 1024];
        let mut got = false;
        loop {
            match (&self.stream).read(&mut buf) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-batch",
                    ))
                }
                Ok(n) => {
                    got = true;
                    self.ingest(n, &buf)?;
                }
                Err(e) if e.kind() == WouldBlock => break,
                Err(e) if e.kind() == Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(got)
    }

    /// Feeds `buf[..n]` to the codec and files every decoded message,
    /// traced as one `proto/frame_decode` span per readable burst —
    /// the pipelined read path's twin of the server's drain span.
    fn ingest(&mut self, n: usize, buf: &[u8]) -> std::io::Result<()> {
        let t0 = econcast_trace::armed_now();
        let mut decoded = 0u64;
        self.codec.feed(&buf[..n]);
        loop {
            match self.codec.next_message() {
                Ok(Some(msg)) => {
                    decoded += 1;
                    self.dispatch(msg);
                }
                Ok(None) => {
                    if decoded > 0 {
                        econcast_trace::complete_from(
                            "proto",
                            "frame_decode",
                            t0,
                            &[("msgs", decoded)],
                        );
                    }
                    return Ok(());
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("undecodable server reply: {e:?}"),
                    ))
                }
            }
        }
    }

    /// Routes one decoded message to its in-flight batch: by
    /// correlation id when the peer stamped one (v5), by id range
    /// otherwise (v4). Control-plane messages and replies for no
    /// live ticket are dropped.
    fn dispatch(&mut self, msg: ServiceMessage) {
        let (corr, id, result) = match msg {
            ServiceMessage::Response(r) => (r.corr, r.id, Ok(r)),
            ServiceMessage::Error(e) => (e.corr, e.id, Err(e)),
            _ => return,
        };
        let batch = if corr != 0 {
            self.pending.iter_mut().find(|b| b.corr == corr)
        } else {
            self.pending.iter_mut().find(|b| b.collector.owns(id))
        };
        if let Some(b) = batch {
            b.collector.file(id, result);
        }
    }

    /// Fetches one shard's counters (`None` = the aggregate).
    pub fn stats(&mut self, shard: Option<u16>) -> std::io::Result<ServiceStats> {
        let id = self.take_id();
        let shard = shard.unwrap_or(STATS_SHARD_AGGREGATE);
        self.send(&ServiceMessage::StatsRequest(WireStatsRequest {
            id,
            shard,
        }))?;
        loop {
            match self.recv()? {
                ServiceMessage::StatsResponse(r) if r.id == id => {
                    return Ok(ServiceStats::from_wire(&r.stats));
                }
                ServiceMessage::Error(e) if e.id == id => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("server rejected stats request for shard {shard}"),
                    ));
                }
                other => self.dispatch(other),
            }
        }
    }

    /// Fetches the server's metrics snapshot (wire v7): hub counters,
    /// injected gauges, and the always-on latency histograms. Errors
    /// without sending anything when the connection negotiated a
    /// pre-v7 version — the scrape pair must never reach an older
    /// peer.
    pub fn metrics(&mut self) -> std::io::Result<econcast_metrics::MetricsSnapshot> {
        if self.wire_version < METRICS_WIRE_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                format!(
                    "metrics scrape needs wire v{METRICS_WIRE_VERSION}, peer speaks v{}",
                    self.wire_version
                ),
            ));
        }
        let id = self.take_id();
        self.send(&ServiceMessage::MetricsRequest(WireMetricsRequest { id }))?;
        loop {
            match self.recv()? {
                ServiceMessage::MetricsResponse(r) if r.id == id => {
                    return Ok(crate::metrics::snapshot_from_wire(&r.snapshot));
                }
                ServiceMessage::Error(e) if e.id == id => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "server rejected metrics request",
                    ));
                }
                other => self.dispatch(other),
            }
        }
    }

    fn take_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    /// A fresh non-zero correlation id (0 is the wire's "unknown").
    fn take_corr(&mut self) -> u32 {
        let corr = self.next_corr;
        self.next_corr = self.next_corr.wrapping_add(1);
        if self.next_corr == 0 {
            self.next_corr = 1;
        }
        corr
    }

    fn send(&mut self, msg: &ServiceMessage) -> std::io::Result<()> {
        debug_assert!(self.enc.is_drained(), "send during an unflushed submit");
        self.enc.push(msg, self.wire_version);
        while !self.enc.is_drained() {
            let n = (&self.stream).write(self.enc.pending())?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "server stopped reading",
                ));
            }
            self.enc.advance(n);
        }
        Ok(())
    }

    /// Blocks until the next complete message arrives. Decode errors
    /// surface as `InvalidData`; a server-side disconnect as
    /// `UnexpectedEof`.
    fn recv(&mut self) -> std::io::Result<ServiceMessage> {
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.codec.next_message() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("undecodable server reply: {e:?}"),
                    ))
                }
            }
            let n = (&self.stream).read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.codec.feed(&buf[..n]);
        }
    }
}

/// Whether a handshake failure looks like "old server dropped our
/// v5 hello" — the silent-close behaviour of a pre-v5 binary whose
/// codec hit `UnsupportedVersion` — rather than a dead endpoint.
fn handshake_version_rejected(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}
