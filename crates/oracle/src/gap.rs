//! The achievability gap: sandwiching the oracle `T*` with the
//! entropy-regularized solver.
//!
//! Weak duality on (P4) gives machine-checkable two-sided bounds on
//! the oracle throughput without trusting either solver blindly:
//!
//! * **from below** — the (P4) optimum's expected throughput
//!   `T^σ = E_π[T_w]` is attained by an implementable distribution, so
//!   (up to the dual residual tolerance) `T^σ ≤ T*`;
//! * **from above** — for any multipliers `η ≥ 0` the dual value
//!   `D(η) = E[T] + σH(π_η) + Σ_i η_i (ρ_i − cons_i)` dominates the
//!   constrained optimum of the regularized objective, and the entropy
//!   term is non-negative, so `T* ≤ D(η)`.
//!
//! As `σ → 0` the sandwich tightens onto the LP oracle of
//! [`crate::groupput`]/[`crate::anyput`] (Theorem 1's limit), which
//! makes the triple `(T^σ, T*_LP, D(η))` a strong cross-validation of
//! the simplex and Gibbs code paths against each other.
//!
//! Sweeps reuse one [`P4Solver`] — the kernel workspaces and every
//! summary buffer are allocated once for the whole σ frontier. The
//! solver's kernel-dispatch layer means the gap machinery scales with
//! it: heterogeneous instances beyond the enumeration wall
//! (`N > 20`) run the factorized polynomial kernel, and the LP
//! oracles are polynomial too — groupput is `2N` variables /
//! `3N + 1` constraints, anyput `2N + N(N−1)` variables (one per
//! ordered transmitter/receiver pair) — so two-sided certificates at
//! `N = 32` or `64` cost well under a second, not `2^N`.

use crate::{
    oracle_anyput, oracle_anyput_homogeneous, oracle_groupput, oracle_groupput_homogeneous,
};
use econcast_core::{NodeParams, ThroughputMode};
use econcast_statespace::homogeneous::HomogeneousP4Solution;
use econcast_statespace::{P4Options, P4Solution, P4Solver};

/// A two-sided certificate around the oracle throughput at one `σ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AchievabilityGap {
    /// Temperature this gap was evaluated at.
    pub sigma: f64,
    /// `T^σ` — achievable throughput of the (P4) optimum (the lower
    /// end of the sandwich, up to the dual residual tolerance).
    pub t_sigma: f64,
    /// The LP oracle `T*` (what Figs. 2–3 normalize against).
    pub oracle: f64,
    /// `D(η)` at the final multipliers — a weak-duality upper bound on
    /// the entropy-regularized optimum, hence on `T*`.
    pub dual_upper: f64,
    /// Whether the dual descent met its tolerance.
    pub converged: bool,
}

impl AchievabilityGap {
    /// `T^σ / T*` — the ratio the paper plots.
    pub fn ratio(&self) -> f64 {
        if self.oracle > 0.0 {
            self.t_sigma / self.oracle
        } else {
            f64::NAN
        }
    }

    /// Verifies the sandwich `T^σ ≤ T* ≤ D(η)` within `tol`
    /// (absolute + relative).
    pub fn is_consistent(&self, tol: f64) -> bool {
        let slack = tol * (1.0 + self.oracle.abs());
        self.t_sigma <= self.oracle + slack && self.oracle <= self.dual_upper + slack
    }
}

/// The LP oracle for `mode`, short-circuiting to the Appendix-B closed
/// form for homogeneous instances in the energy-constrained regime —
/// certificates for thousand-node homogeneous policies never touch the
/// simplex.
pub fn oracle_throughput_for(nodes: &[NodeParams], mode: ThroughputMode) -> f64 {
    if nodes.len() >= 2 && nodes.windows(2).all(|w| w[0] == w[1]) {
        let closed = match mode {
            ThroughputMode::Groupput => oracle_groupput_homogeneous(nodes.len(), &nodes[0]),
            ThroughputMode::Anyput => oracle_anyput_homogeneous(nodes.len(), &nodes[0]),
        };
        if let Some(s) = closed {
            return s.throughput;
        }
    }
    match mode {
        ThroughputMode::Groupput => oracle_groupput(nodes).throughput,
        ThroughputMode::Anyput => oracle_anyput(nodes).throughput,
    }
}

/// Assembles the weak-duality certificate around an *existing* (P4)
/// solution — no re-solve, one oracle evaluation. This is what the
/// policy service attaches to every response.
pub fn certificate_for(
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    sol: &P4Solution,
) -> AchievabilityGap {
    certificate_with_oracle(nodes, sigma, sol, oracle_throughput_for(nodes, mode))
}

/// Certificate assembly against a precomputed oracle value (sweeps and
/// caches amortize the LP solve).
fn certificate_with_oracle(
    nodes: &[NodeParams],
    sigma: f64,
    sol: &P4Solution,
    oracle: f64,
) -> AchievabilityGap {
    // D(η) = objective + Σ η_i (ρ_i − cons_i).
    let mut dual = sol.objective;
    for (i, p) in nodes.iter().enumerate() {
        let cons = p.average_power(sol.alpha[i], sol.beta[i]);
        dual += sol.eta[i] * (p.budget_w - cons);
    }
    AchievabilityGap {
        sigma,
        t_sigma: sol.throughput,
        oracle,
        dual_upper: dual,
        converged: sol.converged,
    }
}

/// [`certificate_for`] for the homogeneous fast path: the scalar-dual
/// solution of `HomogeneousP4` carries everything the dual value needs
/// (`D(η) = E[T] + σH + N·η·(ρ − cons)`), and the bisection is exact,
/// so the certificate reports convergence unconditionally.
pub fn certificate_for_homogeneous(
    n: usize,
    params: &NodeParams,
    sigma: f64,
    mode: ThroughputMode,
    sol: &HomogeneousP4Solution,
) -> AchievabilityGap {
    let cons = params.average_power(sol.alpha, sol.beta);
    let dual = sol.summary.expected_throughput
        + sigma * sol.summary.entropy
        + n as f64 * sol.eta * (params.budget_w - cons);
    let nodes = vec![*params; n];
    AchievabilityGap {
        sigma,
        t_sigma: sol.throughput,
        oracle: oracle_throughput_for(&nodes, mode),
        dual_upper: dual,
        converged: true,
    }
}

/// Solves (P4) on the given solver and assembles the certificate
/// against a precomputed oracle value.
fn gap_at(
    solver: &mut P4Solver,
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
    oracle: f64,
) -> AchievabilityGap {
    let sol = solver.solve(nodes, sigma, mode, opts);
    certificate_with_oracle(nodes, sigma, &sol, oracle)
}

/// Evaluates the sandwich at one temperature, using (and mutating) the
/// caller's solver so sweeps amortize the workspace.
pub fn achievability_gap_with(
    solver: &mut P4Solver,
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
) -> AchievabilityGap {
    let oracle = oracle_throughput_for(nodes, mode);
    gap_at(solver, nodes, sigma, mode, opts, oracle)
}

/// One-shot wrapper around [`achievability_gap_with`].
pub fn achievability_gap(
    nodes: &[NodeParams],
    sigma: f64,
    mode: ThroughputMode,
    opts: P4Options,
) -> AchievabilityGap {
    achievability_gap_with(&mut P4Solver::new(nodes.len()), nodes, sigma, mode, opts)
}

/// The σ frontier: gaps at each requested temperature, computed with a
/// single reused solver workspace (and a single oracle LP solve).
pub fn sigma_frontier(
    nodes: &[NodeParams],
    sigmas: &[f64],
    mode: ThroughputMode,
    opts: P4Options,
) -> Vec<AchievabilityGap> {
    let mut solver = P4Solver::new(nodes.len());
    let oracle = oracle_throughput_for(nodes, mode);
    sigmas
        .iter()
        .map(|&sigma| gap_at(&mut solver, nodes, sigma, mode, opts, oracle))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_core::ThroughputMode::{Anyput, Groupput};

    fn nodes() -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); 5]
    }

    #[test]
    fn sandwich_holds_groupput() {
        let g = achievability_gap(&nodes(), 0.5, Groupput, P4Options::default());
        assert!(g.converged);
        assert!(
            g.is_consistent(1e-3),
            "sandwich violated: T^σ={} T*={} D={}",
            g.t_sigma,
            g.oracle,
            g.dual_upper
        );
        assert!(g.ratio() > 0.0 && g.ratio() <= 1.0 + 1e-9);
    }

    #[test]
    fn sandwich_holds_heterogeneous_anyput() {
        let nodes = vec![
            NodeParams::from_microwatts(5.0, 400.0, 600.0),
            NodeParams::from_microwatts(10.0, 500.0, 500.0),
            NodeParams::from_microwatts(50.0, 600.0, 400.0),
            NodeParams::from_microwatts(100.0, 550.0, 450.0),
        ];
        let g = achievability_gap(&nodes, 0.5, Anyput, P4Options::default());
        assert!(
            g.is_consistent(2e-3),
            "sandwich violated: T^σ={} T*={} D={}",
            g.t_sigma,
            g.oracle,
            g.dual_upper
        );
    }

    #[test]
    fn certificate_for_matches_full_gap() {
        let nodes = nodes();
        let mut solver = P4Solver::new(nodes.len());
        let sol = solver.solve(&nodes, 0.5, Groupput, P4Options::default());
        let cert = certificate_for(&nodes, 0.5, Groupput, &sol);
        let full = achievability_gap(&nodes, 0.5, Groupput, P4Options::default());
        assert_eq!(cert, full, "certificate assembly must not depend on path");
    }

    #[test]
    fn homogeneous_certificate_is_consistent_and_matches_exact() {
        use econcast_statespace::HomogeneousP4;
        let p = NodeParams::from_microwatts(10.0, 500.0, 500.0);
        for n in [5usize, 40, 500] {
            let sol = HomogeneousP4::new(n, p, 0.5, Groupput).solve();
            let cert = certificate_for_homogeneous(n, &p, 0.5, Groupput, &sol);
            assert!(cert.converged);
            assert!(
                cert.is_consistent(1e-6),
                "n={n}: T^σ={} T*={} D={}",
                cert.t_sigma,
                cert.oracle,
                cert.dual_upper
            );
        }
        // At a size the exact path can handle, the two certificate
        // constructors agree on the whole sandwich.
        let n = 5;
        let hsol = HomogeneousP4::new(n, p, 0.5, Groupput).solve();
        let hcert = certificate_for_homogeneous(n, &p, 0.5, Groupput, &hsol);
        let ecert = achievability_gap(&vec![p; n], 0.5, Groupput, P4Options::default());
        assert!((hcert.oracle - ecert.oracle).abs() < 1e-9);
        assert!((hcert.t_sigma - ecert.t_sigma).abs() / ecert.t_sigma < 5e-3);
        assert!((hcert.dual_upper - ecert.dual_upper).abs() / ecert.dual_upper < 5e-3);
    }

    #[test]
    fn sandwich_holds_beyond_the_enumeration_wall() {
        // N = 32 heterogeneous: the (P4) side runs the factorized
        // kernel, the oracle side the polynomial LP — the weak-duality
        // sandwich must close around T* exactly as it does at N = 5.
        use econcast_statespace::SummaryKernel;
        let nodes: Vec<NodeParams> = (0..32)
            .map(|i| NodeParams::from_microwatts(2.0 + 2.5 * i as f64, 500.0, 450.0))
            .collect();
        for mode in [Groupput, Anyput] {
            let mut solver = P4Solver::new(nodes.len());
            let sol = solver.solve(&nodes, 0.5, mode, P4Options::default());
            assert_eq!(sol.kernel, SummaryKernel::Factorized);
            let g = certificate_for(&nodes, 0.5, mode, &sol);
            assert!(
                g.is_consistent(5e-3),
                "{mode:?}: sandwich violated at N=32: T^σ={} T*={} D={}",
                g.t_sigma,
                g.oracle,
                g.dual_upper
            );
            assert!(g.ratio() > 0.0 && g.ratio() <= 1.0 + 5e-3);
        }
    }

    #[test]
    fn frontier_tightens_as_sigma_falls() {
        let gaps = sigma_frontier(&nodes(), &[0.75, 0.5, 0.25], Groupput, P4Options::default());
        assert_eq!(gaps.len(), 3);
        for g in &gaps {
            assert!(
                g.is_consistent(2e-3),
                "σ={}: inconsistent sandwich",
                g.sigma
            );
        }
        // The paper's central claim: the ratio rises as σ falls.
        assert!(gaps[2].ratio() > gaps[1].ratio());
        assert!(gaps[1].ratio() > gaps[0].ratio());
        // And every frontier point shares the same oracle value.
        assert_eq!(gaps[0].oracle, gaps[1].oracle);
    }
}
