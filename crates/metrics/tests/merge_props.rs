//! Property tests for the fan-in algebra: a cluster front merges
//! per-shard and per-backend snapshots in whatever order scrapes
//! happen to complete, so the merge must be associative and
//! order-insensitive — otherwise two scrapes of the same quiescent
//! cluster could disagree. Checked over generated observation sets,
//! not hand-picked examples: the log-bucketing means two values can
//! share a bucket, and the sparse representation means bucket *sets*
//! differ across shards — exactly the structure example-based tests
//! under-explore.

use econcast_metrics::{
    HistSnapshot, Histogram, MetricsSnapshot, GAUGE_KINDS, GAUGE_KIND_MAX, NUM_COUNTERS,
};
use proptest::prelude::*;

/// A shard's histogram snapshot: every value in `values` recorded
/// once. Spans sub-bucket-zero to ~18 hours in nanoseconds, so bucket
/// collisions and distinct sparse bucket sets both occur.
fn hist_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Observation lists for 2–6 shards/backends.
fn shards() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..1 << 46, 0..40), 2..6)
}

/// Raw material for one registry-shaped snapshot: counter values,
/// gauge values, and per-histogram observation lists — what any one
/// backend of the current wire version reports.
type SnapshotParts = (Vec<u64>, Vec<u64>, Vec<Vec<u64>>);

fn snapshot_parts() -> impl Strategy<Value = SnapshotParts> {
    (
        proptest::collection::vec(0u64..1 << 40, NUM_COUNTERS),
        proptest::collection::vec(0u64..1 << 32, GAUGE_KINDS.len()),
        proptest::collection::vec(proptest::collection::vec(0u64..1 << 46, 0..20), 2),
    )
}

fn snap((counters, gauge_vals, hist_values): &SnapshotParts) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: counters.clone(),
        gauges: GAUGE_KINDS
            .iter()
            .zip(gauge_vals)
            .map(|(&k, &v)| (k, v))
            .collect(),
        hists: hist_values.iter().map(|v| hist_of(v)).collect(),
    }
}

/// Fold `parts` left-to-right into one snapshot.
fn merge_all<'a>(parts: impl Iterator<Item = &'a HistSnapshot>) -> HistSnapshot {
    let mut acc = HistSnapshot::default();
    for p in parts {
        acc.merge(p);
    }
    acc
}

proptest! {
    /// Merging per-shard histograms is order-insensitive: the scrape
    /// that collects backends in reverse sees the identical histogram.
    #[test]
    fn hist_merge_is_order_insensitive(obs in shards()) {
        let parts: Vec<HistSnapshot> = obs.iter().map(|v| hist_of(v)).collect();
        let forward = merge_all(parts.iter());
        let backward = merge_all(parts.iter().rev());
        prop_assert_eq!(&forward, &backward);
        // And equal to recording everything into one histogram — the
        // sharded plane is indistinguishable from a single hot one.
        let flat: Vec<u64> = obs.concat();
        prop_assert_eq!(&forward, &hist_of(&flat));
        prop_assert_eq!(forward.total(), flat.len() as u64);
    }

    /// Associativity: any grouping of the same shards merges to the
    /// same histogram — a front may pre-merge its local shards before
    /// folding in remote backends, or not, identically.
    #[test]
    fn hist_merge_is_associative(obs in shards(), split in 1usize..5) {
        let parts: Vec<HistSnapshot> = obs.iter().map(|v| hist_of(v)).collect();
        let k = split.min(parts.len() - 1);
        // (a1·…·ak)·(ak+1·…·an) vs the flat left fold.
        let mut grouped = merge_all(parts[..k].iter());
        grouped.merge(&merge_all(parts[k..].iter()));
        prop_assert_eq!(grouped, merge_all(parts.iter()));
    }

    /// The empty histogram is the merge identity on both sides.
    #[test]
    fn hist_merge_identity(obs in proptest::collection::vec(0u64..1 << 46, 0..40)) {
        let h = hist_of(&obs);
        let mut left = HistSnapshot::default();
        left.merge(&h);
        prop_assert_eq!(&left, &h);
        let mut right = h.clone();
        right.merge(&HistSnapshot::default());
        prop_assert_eq!(&right, &h);
    }

    /// Full-snapshot merge is commutative and associative across
    /// same-registry backends: counters sum, max-kind gauges max,
    /// sum-kind gauges sum, histograms merge — none of it depends on
    /// fan-in order.
    #[test]
    fn snapshot_merge_is_commutative_and_associative(
        pa in snapshot_parts(),
        pb in snapshot_parts(),
        pc in snapshot_parts(),
    ) {
        let (a, b, c) = (snap(&pa), snap(&pb), snap(&pc));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // The zeroed snapshot is the identity.
        let mut z = MetricsSnapshot::zeroed();
        z.merge(&a);
        prop_assert_eq!(&z, &a);

        // Spot-check the gauge semantics the equality relies on: each
        // slot either summed or maxed per its kind tag.
        for (i, &(kind, v)) in ab.gauges.iter().enumerate() {
            let (x, y) = (a.gauges[i].1, b.gauges[i].1);
            if kind == GAUGE_KIND_MAX {
                prop_assert_eq!(v, x.max(y));
            } else {
                prop_assert_eq!(v, x.wrapping_add(y));
            }
        }
    }
}
