//! Network connectivity: cliques (the paper's analytical setting) and
//! general graphs (Section IV-C / VII-E), including the grid topologies
//! used in Fig. 6.

/// Who can hear whom. Symmetric, no self-loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every node hears every other node (Section III-C's analytical
    /// assumption).
    Clique {
        /// Number of nodes.
        n: usize,
    },
    /// Arbitrary symmetric connectivity via adjacency lists.
    Graph {
        /// `adjacency[i]` lists the neighbors of node `i`, sorted
        /// ascending.
        adjacency: Vec<Vec<usize>>,
    },
}

impl Topology {
    /// Creates a clique of `n` nodes.
    pub fn clique(n: usize) -> Self {
        Topology::Clique { n }
    }

    /// Creates a graph from an undirected edge list over `n` nodes,
    /// symmetrizing and deduplicating.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a != b, "self-loop {a}-{b}");
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Topology::Graph { adjacency }
    }

    /// The `rows × cols` grid of Section VII-E (Fig. 6): nodes are
    /// connected to their 4-neighborhood, so each node has at most four
    /// neighbors. Node `(r, c)` has index `r * cols + c`.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    edges.push((i, i + 1));
                }
                if r + 1 < rows {
                    edges.push((i, i + cols));
                }
            }
        }
        Topology::from_edges(rows * cols, &edges)
    }

    /// A square `k × k` grid, the exact shape used in Fig. 6 ("N = 25
    /// represents a 5 × 5 grid").
    pub fn square_grid(k: usize) -> Self {
        Topology::grid(k, k)
    }

    /// A line (path) of `n` nodes — the simplest non-clique.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::from_edges(n, &edges)
    }

    /// A ring of `n ≥ 3` nodes.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 nodes");
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Topology::from_edges(n, &edges)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            Topology::Clique { n } => *n,
            Topology::Graph { adjacency } => adjacency.len(),
        }
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when nodes `a` and `b` are within communication range.
    pub fn are_neighbors(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        match self {
            Topology::Clique { n } => a < *n && b < *n,
            Topology::Graph { adjacency } => adjacency
                .get(a)
                .is_some_and(|l| l.binary_search(&b).is_ok()),
        }
    }

    /// Neighbors of node `i` as a fresh vector (callers that iterate
    /// hot paths should use [`Topology::for_each_neighbor`]).
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        match self {
            Topology::Clique { n } => (0..*n).filter(|&j| j != i).collect(),
            Topology::Graph { adjacency } => adjacency[i].clone(),
        }
    }

    /// Calls `f` for every neighbor of `i` without allocating.
    pub fn for_each_neighbor<F: FnMut(usize)>(&self, i: usize, mut f: F) {
        match self {
            Topology::Clique { n } => {
                for j in 0..*n {
                    if j != i {
                        f(j);
                    }
                }
            }
            Topology::Graph { adjacency } => {
                for &j in &adjacency[i] {
                    f(j);
                }
            }
        }
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        match self {
            Topology::Clique { n } => n.saturating_sub(1),
            Topology::Graph { adjacency } => adjacency[i].len(),
        }
    }

    /// True when this topology is (structurally) a clique — either the
    /// `Clique` variant or a complete graph.
    pub fn is_clique(&self) -> bool {
        match self {
            Topology::Clique { .. } => true,
            Topology::Graph { adjacency } => {
                let n = adjacency.len();
                adjacency.iter().all(|l| l.len() == n - 1)
            }
        }
    }

    /// True when the topology is connected (singleton and empty count
    /// as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            self.for_each_neighbor(i, |j| {
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            });
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_connectivity() {
        let t = Topology::clique(4);
        assert_eq!(t.len(), 4);
        assert!(t.is_clique());
        assert!(t.is_connected());
        for a in 0..4 {
            assert!(!t.are_neighbors(a, a));
            assert_eq!(t.degree(a), 3);
            for b in 0..4 {
                if a != b {
                    assert!(t.are_neighbors(a, b));
                }
            }
        }
    }

    #[test]
    fn grid_has_four_neighborhood() {
        // 3×3 grid: center node 4 has 4 neighbors, corners have 2.
        let t = Topology::square_grid(3);
        assert_eq!(t.len(), 9);
        assert_eq!(t.degree(4), 4);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.degree(8), 2);
        assert_eq!(t.degree(1), 3); // edge midpoint
        assert!(t.are_neighbors(4, 1));
        assert!(t.are_neighbors(4, 3));
        assert!(t.are_neighbors(4, 5));
        assert!(t.are_neighbors(4, 7));
        assert!(!t.are_neighbors(0, 4)); // diagonal
        assert!(!t.is_clique());
        assert!(t.is_connected());
    }

    #[test]
    fn grid_max_degree_is_four_for_all_fig6_sizes() {
        for k in [2usize, 3, 4, 5, 6, 7, 8, 9, 10] {
            let t = Topology::square_grid(k);
            assert_eq!(t.len(), k * k);
            assert!((0..t.len()).all(|i| t.degree(i) <= 4));
            assert!(t.is_connected());
        }
    }

    #[test]
    fn line_and_ring() {
        let line = Topology::line(4);
        assert_eq!(line.degree(0), 1);
        assert_eq!(line.degree(1), 2);
        assert!(!line.are_neighbors(0, 3));
        let ring = Topology::ring(4);
        assert_eq!(ring.degree(0), 2);
        assert!(ring.are_neighbors(0, 3));
        assert!(ring.is_connected());
    }

    #[test]
    fn complete_graph_detected_as_clique() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(t.is_clique());
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let t = Topology::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.neighbors(0), vec![1]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!t.is_connected());
    }

    #[test]
    fn neighbor_iteration_matches_neighbors() {
        let t = Topology::square_grid(3);
        for i in 0..t.len() {
            let mut collected = Vec::new();
            t.for_each_neighbor(i, |j| collected.push(j));
            assert_eq!(collected, t.neighbors(i));
        }
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        Topology::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edges_rejected() {
        Topology::from_edges(2, &[(0, 2)]);
    }
}
