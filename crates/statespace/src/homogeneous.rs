//! Combinatorial fast path for homogeneous networks.
//!
//! When all nodes share `(ρ, L, X)` and a common multiplier `η`, the
//! Gibbs weight (19) depends on a state only through the pair
//! `(transmitter present?, listener count m)`. Aggregating the
//! `(N + 2)·2^{N−1}` states into `2N + 1` groups —
//!
//! * no transmitter, `m ∈ 0..=N` listeners: `C(N, m)` states each with
//!   log-weight `−m·ηL/σ`;
//! * one transmitter, `m ∈ 0..=N−1` listeners: `N·C(N−1, m)` states
//!   with log-weight `(T(m) − m·ηL − ηX)/σ`
//!
//! — makes the marginals and (P4) solvable for thousands of nodes. The
//! same optimum is symmetric in the nodes (the dual is convex and the
//! problem invariant under permutations), so a *scalar* multiplier
//! suffices and the dual minimization becomes a monotone root-find on
//! the budget slack, solved here by bisection.

use econcast_core::{NodeParams, ThroughputMode};

/// Precomputed `ln m!` table for stable `ln C(n, k)`.
fn ln_factorials(n: usize) -> Vec<f64> {
    let mut t = vec![0.0; n + 1];
    for i in 1..=n {
        t[i] = t[i - 1] + (i as f64).ln();
    }
    t
}

/// Aggregated Gibbs evaluation for a homogeneous network.
#[derive(Debug, Clone)]
pub struct HomogeneousGibbs {
    n: usize,
    params: NodeParams,
    sigma: f64,
    mode: ThroughputMode,
    ln_fact: Vec<f64>,
}

/// Aggregated marginals at a given scalar multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousSummary {
    /// Per-node listen fraction `α`.
    pub alpha: f64,
    /// Per-node transmit fraction `β`.
    pub beta: f64,
    /// Expected network throughput `E[T_w]`.
    pub expected_throughput: f64,
    /// `log Z_η`.
    pub log_partition: f64,
    /// Distribution entropy (nats).
    pub entropy: f64,
    /// Burst-state mass `Σ_{W'} π_w` (numerator of (34)).
    pub burst_mass: f64,
    /// `Σ_{W'} π_w · λ_xl(w)` (denominator of (34); mode-aware).
    pub burst_exit_mass: f64,
}

impl HomogeneousSummary {
    /// Average burst length, eq. (34)/(35).
    pub fn average_burst_length(&self) -> Option<f64> {
        (self.burst_exit_mass > 0.0).then(|| self.burst_mass / self.burst_exit_mass)
    }

    /// Average power consumption per node.
    pub fn consumption(&self, params: &NodeParams) -> f64 {
        params.average_power(self.alpha, self.beta)
    }
}

impl HomogeneousGibbs {
    /// Creates the aggregated evaluator.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or `sigma ≤ 0`.
    pub fn new(n: usize, params: NodeParams, sigma: f64, mode: ThroughputMode) -> Self {
        assert!(n >= 1);
        assert!(sigma > 0.0 && sigma.is_finite());
        HomogeneousGibbs {
            n,
            params,
            sigma,
            mode,
            ln_fact: ln_factorials(n),
        }
    }

    fn ln_choose(&self, n: usize, k: usize) -> f64 {
        self.ln_fact[n] - self.ln_fact[k] - self.ln_fact[n - k]
    }

    /// Per-state throughput for a one-transmitter group with `m`
    /// listeners.
    fn t_of(&self, m: usize) -> f64 {
        self.mode.state_throughput(true, m)
    }

    /// The log of one aggregated group's total weight
    /// (`ln multiplicity + per-state log weight`) for listener count
    /// `m`, with or without a transmitter.
    fn group_log_term(&self, eta: f64, m: usize, has_tx: bool) -> f64 {
        let (l, x, sigma) = (self.params.listen_w, self.params.transmit_w, self.sigma);
        if has_tx {
            (self.n as f64).ln()
                + self.ln_choose(self.n - 1, m)
                + (self.t_of(m) - m as f64 * eta * l - eta * x) / sigma
        } else {
            self.ln_choose(self.n, m) - (m as f64) * eta * l / sigma
        }
    }

    /// Iterates `(m, has_tx)` over the `2N + 1` aggregated groups.
    fn groups(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        (0..=self.n)
            .map(|m| (m, false))
            .chain((0..self.n).map(|m| (m, true)))
    }

    /// Evaluates the aggregated summary at scalar multiplier `eta`.
    /// Allocation-free: the `2N + 1` group terms are recomputed in the
    /// accumulation pass instead of being collected.
    pub fn summarize(&self, eta: f64) -> HomogeneousSummary {
        assert!(eta >= 0.0 && eta.is_finite());
        let n = self.n;
        let nf = n as f64;
        let (l, x, sigma) = (self.params.listen_w, self.params.transmit_w, self.sigma);

        let max_lt = self
            .groups()
            .map(|(m, has_tx)| self.group_log_term(eta, m, has_tx))
            .fold(f64::NEG_INFINITY, f64::max);

        let mut z = 0.0;
        let mut listeners_acc = 0.0;
        let mut tx_acc = 0.0;
        let mut tw_acc = 0.0;
        let mut state_exponent_acc = 0.0; // Σ mass · per-state log-weight
        let mut burst_acc = 0.0;
        let mut burst_exit_acc = 0.0;
        for (m, has_tx) in self.groups() {
            let lt = self.group_log_term(eta, m, has_tx);
            let mass = (lt - max_lt).exp();
            z += mass;
            listeners_acc += mass * m as f64;
            let t_w;
            if has_tx {
                tx_acc += mass;
                t_w = self.t_of(m);
                tw_acc += mass * t_w;
                if m >= 1 {
                    burst_acc += mass;
                    let signal = self.mode.listener_signal(m as f64);
                    burst_exit_acc += mass * (-signal / sigma).exp();
                }
            } else {
                t_w = 0.0;
            }
            // Per-state log weight (without the multiplicity term).
            let per_state_lw =
                (t_w - m as f64 * eta * l - if has_tx { eta * x } else { 0.0 }) / sigma;
            state_exponent_acc += mass * per_state_lw;
        }

        let log_partition = max_lt + z.ln();
        let inv_z = 1.0 / z;
        HomogeneousSummary {
            alpha: listeners_acc * inv_z / nf,
            beta: tx_acc * inv_z / nf,
            expected_throughput: tw_acc * inv_z,
            log_partition,
            entropy: log_partition - state_exponent_acc * inv_z,
            burst_mass: burst_acc * inv_z,
            burst_exit_mass: burst_exit_acc * inv_z,
        }
    }
}

/// (P4) for homogeneous networks via bisection on the scalar dual.
#[derive(Debug, Clone)]
pub struct HomogeneousP4 {
    gibbs: HomogeneousGibbs,
    params: NodeParams,
}

/// Result of the homogeneous (P4) solve.
#[derive(Debug, Clone, Copy)]
pub struct HomogeneousP4Solution {
    /// Achievable throughput `T^σ`.
    pub throughput: f64,
    /// Optimal scalar multiplier `η*`.
    pub eta: f64,
    /// Per-node listen fraction.
    pub alpha: f64,
    /// Per-node transmit fraction.
    pub beta: f64,
    /// Final aggregated summary.
    pub summary: HomogeneousSummary,
}

impl HomogeneousP4 {
    /// Creates the solver.
    pub fn new(n: usize, params: NodeParams, sigma: f64, mode: ThroughputMode) -> Self {
        HomogeneousP4 {
            gibbs: HomogeneousGibbs::new(n, params, sigma, mode),
            params,
        }
    }

    /// Solves (P4): finds the scalar `η* ≥ 0` with consumption equal to
    /// the budget (or `η* = 0` when the budget never binds).
    ///
    /// Consumption `α(η)L + β(η)X` is strictly decreasing in `η`
    /// (raising the price of energy can only reduce activity), so a
    /// doubling search followed by bisection is exact.
    pub fn solve(&self) -> HomogeneousP4Solution {
        let rho = self.params.budget_w;
        let cons = |eta: f64| {
            let s = self.gibbs.summarize(eta);
            (s.consumption(&self.params), s)
        };

        let (c0, s0) = cons(0.0);
        if c0 <= rho {
            return HomogeneousP4Solution {
                throughput: s0.expected_throughput,
                eta: 0.0,
                alpha: s0.alpha,
                beta: s0.beta,
                summary: s0,
            };
        }

        // Doubling search for an upper bracket.
        let mut hi = 1.0 / self.params.listen_w.max(self.params.transmit_w);
        let mut iter = 0;
        while cons(hi).0 > rho {
            hi *= 2.0;
            iter += 1;
            assert!(iter < 200, "failed to bracket the dual optimum");
        }
        let mut lo = 0.0;
        // 200 bisection steps: interval shrinks by 2^200 — exact to f64.
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if cons(mid).0 > rho {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= f64::EPSILON * hi {
                break;
            }
        }
        let eta = 0.5 * (lo + hi);
        let (_, s) = cons(eta);
        HomogeneousP4Solution {
            throughput: s.expected_throughput,
            eta,
            alpha: s.alpha,
            beta: s.beta,
            summary: s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::{summarize, GibbsParams};
    use crate::p4::{solve_p4, P4Options};
    use econcast_core::ThroughputMode::{Anyput, Groupput};
    use proptest::prelude::*;

    fn params() -> NodeParams {
        NodeParams::from_microwatts(10.0, 500.0, 500.0)
    }

    #[test]
    fn aggregation_matches_enumeration() {
        for n in [2usize, 3, 5, 8] {
            for mode in [Groupput, Anyput] {
                for eta in [0.0, 500.0, 3000.0] {
                    let agg = HomogeneousGibbs::new(n, params(), 0.5, mode).summarize(eta);
                    let nodes = vec![params(); n];
                    let etas = vec![eta; n];
                    let exact = summarize(&GibbsParams {
                        nodes: &nodes,
                        eta: &etas,
                        sigma: 0.5,
                        mode,
                    });
                    assert!(
                        (agg.alpha - exact.alpha[0]).abs() < 1e-10,
                        "alpha n={n} eta={eta}: {} vs {}",
                        agg.alpha,
                        exact.alpha[0]
                    );
                    assert!((agg.beta - exact.beta[0]).abs() < 1e-10);
                    assert!((agg.expected_throughput - exact.expected_throughput).abs() < 1e-9);
                    assert!((agg.log_partition - exact.log_partition).abs() < 1e-9);
                    assert!((agg.entropy - exact.entropy).abs() < 1e-8);
                    assert!((agg.burst_mass - exact.burst_mass).abs() < 1e-10);
                    assert!((agg.burst_exit_mass - exact.burst_exit_mass).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn bisection_matches_gradient_solver() {
        let n = 5;
        let sol_fast = HomogeneousP4::new(n, params(), 0.5, Groupput).solve();
        let nodes = vec![params(); n];
        // Pin the Gray-code descent: Auto would dispatch homogeneous
        // instances right back to the bisection under test.
        let sol_grad = solve_p4(
            &nodes,
            0.5,
            Groupput,
            P4Options {
                kernel: crate::p4::KernelSelect::GrayCode,
                ..P4Options::default()
            },
        );
        let rel = (sol_fast.throughput - sol_grad.throughput).abs() / sol_fast.throughput;
        assert!(
            rel < 5e-3,
            "bisection {} vs gradient {}",
            sol_fast.throughput,
            sol_grad.throughput
        );
    }

    #[test]
    fn consumption_meets_budget_when_binding() {
        let sol = HomogeneousP4::new(5, params(), 0.5, Groupput).solve();
        let cons = sol.summary.consumption(&params());
        assert!(
            (cons - params().budget_w).abs() / params().budget_w < 1e-9,
            "consumption {} vs budget {}",
            cons,
            params().budget_w
        );
    }

    #[test]
    fn unconstrained_budget_keeps_eta_zero() {
        // A node with a huge budget: η* = 0 and the distribution is the
        // pure max-throughput Gibbs measure.
        let rich = NodeParams::new(1.0, 500e-6, 500e-6);
        let sol = HomogeneousP4::new(5, rich, 0.5, Groupput).solve();
        assert_eq!(sol.eta, 0.0);
        assert!(sol.throughput > 1.0); // way above any energy-limited value
    }

    #[test]
    fn anyput_burst_length_is_exp_one_over_sigma() {
        // Eq. (35): B_a = e^{1/σ} independent of N.
        for n in [5usize, 10, 40] {
            for sigma in [0.25, 0.5, 0.75] {
                let sol = HomogeneousP4::new(n, params(), sigma, Anyput).solve();
                let b = sol.summary.average_burst_length().unwrap();
                assert!(
                    (b - (1.0 / sigma).exp()).abs() / b < 1e-9,
                    "n={n} σ={sigma}: B_a = {b}"
                );
            }
        }
    }

    #[test]
    fn scales_to_large_networks() {
        // N = 500 would be ~2^500 states by enumeration; aggregation
        // handles it instantly.
        let sol = HomogeneousP4::new(500, params(), 0.5, Groupput).solve();
        assert!(sol.throughput > 0.0);
        assert!(sol.alpha > 0.0 && sol.alpha < 1.0);
        let cons = sol.summary.consumption(&params());
        assert!((cons - params().budget_w).abs() / params().budget_w < 1e-6);
    }

    proptest! {
        /// Consumption is monotone decreasing in η — the property the
        /// bisection relies on.
        #[test]
        fn prop_consumption_monotone_in_eta(
            n in 2usize..30,
            eta1 in 0.0f64..5000.0,
            d in 1.0f64..5000.0,
            sigma in 0.15f64..1.0,
        ) {
            let g = HomogeneousGibbs::new(n, params(), sigma, Groupput);
            let c1 = g.summarize(eta1).consumption(&params());
            let c2 = g.summarize(eta1 + d).consumption(&params());
            prop_assert!(c2 <= c1 + 1e-12);
        }

        /// Throughput from the solved (P4) never exceeds the
        /// closed-form oracle groupput `N(N−1)ρ/(X+(N−1)L)`.
        #[test]
        fn prop_p4_below_closed_form_oracle(
            n in 2usize..20,
            sigma in 0.2f64..1.0,
        ) {
            let p = params();
            let sol = HomogeneousP4::new(n, p, sigma, Groupput).solve();
            let beta_star = p.budget_w / (p.transmit_w + (n as f64 - 1.0) * p.listen_w);
            let t_star = n as f64 * (n as f64 - 1.0) * beta_star;
            prop_assert!(sol.throughput <= t_star + 1e-9);
        }
    }
}
