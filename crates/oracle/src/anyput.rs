//! Oracle anyput in a clique — the LP (P3) of Section IV-B.
//!
//! ```text
//! T*_a = max_{α,β,χ} Σ_i β_i
//! s.t.  α_i L_i + β_i X_i ≤ ρ_i      (9)
//!       α_i + β_i ≤ 1                (10)
//!       Σ_i β_i ≤ 1                  (11)
//!       β_i ≤ Σ_{j≠i} χ_{i,j}        (14) every transmission has a listener
//!       α_j = Σ_{i≠j} χ_{i,j}        (15) listens cover assigned receptions
//! ```
//!
//! `χ_{i,j}` is the fraction of time node `j` receives from node `i`.

use crate::solution::OracleSolution;
use econcast_core::NodeParams;
use econcast_lp::{Problem, Relation};

/// Variable layout for (P3): `α` at `0..n`, `β` at `n..2n`, then the
/// `χ_{i,j}` (`i ≠ j`) packed row-major with the diagonal skipped.
fn chi_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i != j && i < n && j < n);
    let col = if j < i { j } else { j - 1 };
    2 * n + i * (n - 1) + col
}

/// Solves (P3) exactly. The LP has `2N + N(N−1)` variables.
///
/// # Panics
///
/// Panics when `nodes` is empty.
pub fn oracle_anyput(nodes: &[NodeParams]) -> OracleSolution {
    let n = nodes.len();
    assert!(n >= 1, "need at least one node");
    let num_vars = 2 * n + n * (n.saturating_sub(1));
    let mut obj = vec![0.0; num_vars];
    for o in obj.iter_mut().skip(n).take(n) {
        *o = 1.0;
    }
    let mut p = Problem::maximize(&obj);
    for (i, node) in nodes.iter().enumerate() {
        // (9)
        p.constrain_sparse(
            &[(i, node.listen_w), (n + i, node.transmit_w)],
            Relation::Le,
            node.budget_w,
        );
        // (10)
        p.constrain_sparse(&[(i, 1.0), (n + i, 1.0)], Relation::Le, 1.0);
        if n >= 2 {
            // (14): β_i − Σ_{j≠i} χ_{i,j} ≤ 0
            let mut row: Vec<(usize, f64)> = vec![(n + i, 1.0)];
            for j in 0..n {
                if j != i {
                    row.push((chi_index(n, i, j), -1.0));
                }
            }
            p.constrain_sparse(&row, Relation::Le, 0.0);
            // (15): α_i − Σ_{j≠i} χ_{j,i} = 0
            let mut row: Vec<(usize, f64)> = vec![(i, 1.0)];
            for j in 0..n {
                if j != i {
                    row.push((chi_index(n, j, i), -1.0));
                }
            }
            p.constrain_sparse(&row, Relation::Eq, 0.0);
        } else {
            // A single node can never deliver to anyone: β_0 = 0.
            p.constrain_sparse(&[(n + i, 1.0)], Relation::Le, 0.0);
        }
    }
    // (11)
    let all_beta: Vec<(usize, f64)> = (0..n).map(|j| (n + j, 1.0)).collect();
    p.constrain_sparse(&all_beta, Relation::Le, 1.0);

    let sol = p
        .solve()
        .expect("(P3) is always feasible: the all-sleep schedule satisfies every constraint");
    OracleSolution {
        throughput: sol.objective,
        alpha: sol.x[..n].to_vec(),
        beta: sol.x[n..2 * n].to_vec(),
    }
}

/// The closed-form homogeneous solution, both regimes:
///
/// * **energy-constrained** (`N·β* ≤ 1` with `β* = ρ/(X+L)`): each
///   transmission is paired with exactly one listener (Section IV-B),
///   so `α* = β*` and `T*_a = N·β*`;
/// * **airtime-capped** (`N·β* > 1`): at most one packet can be on air
///   at a time and anyput counts each at most once, so `T*_a = 1`,
///   reached by round-robin `β = α = 1/N` — feasible because the cap
///   binding means `ρ > (X+L)/N`, and `α + β = 2/N ≤ 1` for `N ≥ 2`.
///
/// Cross-checked against the (P3) LP over both regimes in tests;
/// always `Some` (the `Option` is kept for API stability with the
/// groupput closed form, which genuinely has a fallback regime).
pub fn oracle_anyput_homogeneous(n: usize, params: &NodeParams) -> Option<OracleSolution> {
    assert!(n >= 2, "anyput needs at least two nodes");
    let nf = n as f64;
    let beta_free = params.budget_w / (params.transmit_w + params.listen_w);
    let (alpha, beta, throughput) = if nf * beta_free > 1.0 {
        (1.0 / nf, 1.0 / nf, 1.0)
    } else {
        (beta_free, beta_free, nf * beta_free)
    };
    Some(OracleSolution {
        throughput,
        alpha: vec![alpha; n],
        beta: vec![beta; n],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_lp_in_both_regimes() {
        // Sweep across the energy-constrained / airtime-capped
        // boundary: the closed form must track the LP everywhere.
        for n in [2usize, 3, 5, 8, 12] {
            for rho_uw in [5.0, 50.0, 120.0, 300.0, 900.0] {
                let p = NodeParams::from_microwatts(rho_uw, 500.0, 450.0);
                let lp = oracle_anyput(&vec![p; n]).throughput;
                let cf = oracle_anyput_homogeneous(n, &p).unwrap();
                assert!(
                    (lp - cf.throughput).abs() <= 1e-9 * lp.max(1.0),
                    "n={n} rho={rho_uw}: LP {lp} vs closed form {}",
                    cf.throughput
                );
                assert!(cf.is_feasible(&vec![p; n], 1e-9));
            }
        }
    }

    #[test]
    fn airtime_capped_regime_saturates_at_one() {
        let p = NodeParams::from_microwatts(900.0, 500.0, 450.0);
        let cf = oracle_anyput_homogeneous(10, &p).unwrap();
        assert_eq!(cf.throughput, 1.0);
        assert_eq!(cf.beta[0], 0.1);
        assert_eq!(cf.alpha[0], 0.1);
    }
    use proptest::prelude::*;

    fn uw(budget: f64, l: f64, x: f64) -> NodeParams {
        NodeParams::from_microwatts(budget, l, x)
    }

    #[test]
    fn chi_indexing_is_a_bijection() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let idx = chi_index(n, i, j);
                    assert!(idx >= 2 * n && idx < 2 * n + n * (n - 1));
                    assert!(seen.insert(idx), "duplicate index for ({i},{j})");
                }
            }
        }
        assert_eq!(seen.len(), n * (n - 1));
    }

    #[test]
    fn homogeneous_lp_matches_closed_form() {
        for n in [2usize, 3, 5, 8] {
            let p = uw(10.0, 500.0, 500.0);
            let nodes = vec![p; n];
            let lp = oracle_anyput(&nodes);
            let cf = oracle_anyput_homogeneous(n, &p).expect("closed form is total");
            assert!(
                (lp.throughput - cf.throughput).abs() < 1e-9,
                "n={n}: LP {} vs closed form {}",
                lp.throughput,
                cf.throughput
            );
        }
    }

    #[test]
    fn anyput_capped_at_one() {
        // Rich network: anyput saturates at 1 (someone always
        // transmitting to someone).
        let nodes = vec![NodeParams::new(10.0, 1.0, 1.0); 4];
        let sol = oracle_anyput(&nodes);
        assert!((sol.throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anyput_supports_more_transmission_than_groupput() {
        // Anyput needs only one listener per transmission, so the total
        // transmit time Σβ under (P3), N·ρ/(X+L), exceeds groupput's
        // N·ρ/(X+(N−1)L). (Per-node values are not unique at the LP
        // vertex, so compare totals.)
        let p = uw(10.0, 500.0, 500.0);
        let nodes = vec![p; 5];
        let any = oracle_anyput(&nodes);
        let grp = crate::groupput::oracle_groupput(&nodes);
        let any_total: f64 = any.beta.iter().sum();
        let grp_total: f64 = grp.beta.iter().sum();
        assert!(
            any_total > grp_total + 1e-9,
            "anyput Σβ {any_total} vs groupput Σβ {grp_total}"
        );
        // Exact totals from the closed forms.
        assert!((any_total - 5.0 * 10e-6 / 1000e-6).abs() < 1e-9);
        assert!((grp_total - 5.0 * 10e-6 / 2500e-6).abs() < 1e-9);
    }

    #[test]
    fn single_node_anyput_is_zero() {
        let sol = oracle_anyput(&[uw(10.0, 500.0, 500.0)]);
        assert_eq!(sol.throughput, 0.0);
    }

    #[test]
    fn heterogeneous_solution_is_feasible() {
        let nodes = vec![
            uw(5.0, 400.0, 600.0),
            uw(10.0, 500.0, 500.0),
            uw(50.0, 600.0, 400.0),
        ];
        let sol = oracle_anyput(&nodes);
        assert!(sol.is_feasible(&nodes, 1e-8));
        // (14)+(15) imply Σβ ≤ Σα at the aggregate level.
        let sum_a: f64 = sol.alpha.iter().sum();
        let sum_b: f64 = sol.beta.iter().sum();
        assert!(sum_b <= sum_a + 1e-8);
    }

    proptest! {
        /// Anyput is bounded by 1 and by the groupput-style budget cap,
        /// and the LP stays feasible on random networks.
        #[test]
        fn prop_anyput_bounds(
            n in 2usize..6,
            budgets in proptest::collection::vec(1.0f64..100.0, 2..6),
        ) {
            let nodes: Vec<NodeParams> = (0..n)
                .map(|i| uw(budgets[i % budgets.len()], 500.0, 500.0))
                .collect();
            let sol = oracle_anyput(&nodes);
            prop_assert!(sol.is_feasible(&nodes, 1e-7));
            prop_assert!(sol.throughput <= 1.0 + 1e-9);
            prop_assert!(sol.throughput >= -1e-12);
        }
    }
}
