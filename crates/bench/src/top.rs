//! `repro --top` — a polling terminal ops view against a live policy
//! service or cluster front.
//!
//! One v7 metrics scrape per frame feeds a [`SnapshotRing`], so every
//! counter renders as a *windowed rate* (over the last K frames, not
//! since process start) and the request-latency histogram renders as
//! windowed percentiles (this frame's buckets minus the previous
//! frame's). Gauges are instantaneous by construction and print as-is.
//!
//! The view is read-only and allocation-light on the server side: a
//! scrape is one `MetricsRequest` frame answered from relaxed-atomic
//! loads — pointing `--top` at a production front costs the front one
//! snapshot per interval, nothing more.

use econcast_metrics::{
    HistSnapshot, MetricsSnapshot, SnapshotRing, CTR_BATCHES, CTR_DEADLINE_MISS, CTR_DEGRADED,
    CTR_ERRORS, CTR_FAILOVER_RESERVES, CTR_OVERLOADED_RECEIVED, CTR_OVERLOADED_SENT,
    CTR_QUARANTINES, CTR_REQUESTS, CTR_RESHARD_HANDOFFS, CTR_RESPAWNS, CTR_SATURATION_OPENS,
    CTR_SHED, GAUGE_LIVE_BACKENDS, GAUGE_LRU_BYTES, GAUGE_LRU_ENTRIES, GAUGE_QUEUE_DEPTH,
    GAUGE_QUEUE_DEPTH_PEAK, GAUGE_SATURATION_OPEN, HIST_REQUEST_NS,
};
use econcast_service::PolicyClient;
use std::io::{self, Write};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Frames the rate window spans: rates average over the last
/// `WINDOW_FRAMES - 1` intervals, so a burst decays from the display
/// in a few frames instead of being amortized over the whole session.
const WINDOW_FRAMES: usize = 8;

/// Parameters of one `--top` session.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// The service or cluster front to scrape.
    pub addr: SocketAddr,
    /// Delay between frames.
    pub interval: Duration,
    /// Frames to render before returning; `0` polls until the
    /// connection drops.
    pub frames: usize,
    /// Clear the screen between frames (ANSI) — on when stdout is a
    /// terminal, off when piped so logs stay appendable.
    pub clear: bool,
}

/// Bucket-wise `cur - prev`, clamped at zero: the histogram activity
/// within one frame window. Counter-monotone inputs (the same process
/// scraped twice) never clamp; a backend restart between frames does,
/// which renders as an empty window rather than garbage.
fn hist_delta(cur: &HistSnapshot, prev: &HistSnapshot) -> HistSnapshot {
    let mut out = HistSnapshot::default();
    for &(bucket, count) in &cur.buckets {
        let before = prev
            .buckets
            .iter()
            .find(|(b, _)| *b == bucket)
            .map_or(0, |&(_, c)| c);
        let d = count.saturating_sub(before);
        if d > 0 {
            out.buckets.push((bucket, d));
        }
    }
    out
}

/// Renders one frame of the ops view.
fn render(
    out: &mut impl Write,
    frame: usize,
    snap: &MetricsSnapshot,
    ring: &SnapshotRing,
    req_window: &HistSnapshot,
    clear: bool,
) -> io::Result<()> {
    if clear {
        write!(out, "\x1b[2J\x1b[H")?;
    } else if frame > 0 {
        writeln!(out)?;
    }
    let window_s = ring.window_ns() as f64 / 1e9;
    writeln!(out, "econcast top — frame {frame}, window {:.1}s", window_s)?;
    let rate = |idx: usize| ring.rate_per_sec(idx);
    writeln!(
        out,
        "  rates    {:>10.1} req/s {:>10.1} batch/s {:>8.1} err/s",
        rate(CTR_REQUESTS),
        rate(CTR_BATCHES),
        rate(CTR_ERRORS)
    )?;
    // Ladder occupancy over the window: where arriving requests landed
    // (served normal / served degraded / shed), as fractions of
    // everything that arrived.
    let served = ring.delta(CTR_REQUESTS);
    let degraded = ring.delta(CTR_DEGRADED).min(served);
    let shed = ring.delta(CTR_SHED);
    let offered = served + shed;
    let pct = |n: u64| {
        if offered == 0 {
            0.0
        } else {
            n as f64 / offered as f64 * 100.0
        }
    };
    writeln!(
        out,
        "  ladder   {:>9.1}% normal {:>9.1}% degraded {:>7.1}% shed   ({} offered)",
        pct(served - degraded),
        pct(degraded),
        pct(shed),
        offered
    )?;
    // Windowed request-latency percentiles (upper bucket edges — the
    // log-bucket resolution, good to ~7%).
    let q = |p: f64| req_window.quantile(p) as f64 / 1e3;
    if req_window.total() > 0 {
        writeln!(
            out,
            "  latency  {:>9.0}us p50 {:>12.0}us p99 {:>9.0}us p99.9   ({} in window)",
            q(0.50),
            q(0.99),
            q(0.999),
            req_window.total()
        )?;
    } else {
        writeln!(out, "  latency  (no requests in window)")?;
    }
    writeln!(
        out,
        "  queue    {:>10} depth {:>10} peak",
        snap.gauge(GAUGE_QUEUE_DEPTH),
        snap.gauge(GAUGE_QUEUE_DEPTH_PEAK)
    )?;
    writeln!(
        out,
        "  cache    {:>10} entries {:>8} KiB",
        snap.gauge(GAUGE_LRU_ENTRIES),
        snap.gauge(GAUGE_LRU_BYTES) / 1024
    )?;
    writeln!(
        out,
        "  cluster  {:>10} live backends {:>3} saturation windows open",
        snap.gauge(GAUGE_LIVE_BACKENDS),
        snap.gauge(GAUGE_SATURATION_OPEN)
    )?;
    // Ops totals only print once nonzero — a healthy cluster shows a
    // clean frame, an unhealthy one names its failure mode.
    let ops = [
        ("deadline misses", snap.counter(CTR_DEADLINE_MISS)),
        ("overloaded sent", snap.counter(CTR_OVERLOADED_SENT)),
        ("overloaded received", snap.counter(CTR_OVERLOADED_RECEIVED)),
        ("failover re-serves", snap.counter(CTR_FAILOVER_RESERVES)),
        ("respawns", snap.counter(CTR_RESPAWNS)),
        ("quarantines", snap.counter(CTR_QUARANTINES)),
        ("reshard handoffs", snap.counter(CTR_RESHARD_HANDOFFS)),
        ("saturation opens", snap.counter(CTR_SATURATION_OPENS)),
    ];
    let mut shown = false;
    for (label, total) in ops {
        if total > 0 {
            if !shown {
                write!(out, "  ops     ")?;
                shown = true;
            }
            write!(out, " {label}={total}")?;
        }
    }
    if shown {
        writeln!(out)?;
    }
    out.flush()
}

/// Polls `cfg.addr` and renders one frame per scrape to `out`.
///
/// With `frames: 0` this runs until the peer hangs up (the live-ops
/// mode: the view dies with the front, cleanly); with a finite frame
/// count an io error propagates — a smoke run must not swallow one.
pub fn run(cfg: &TopConfig, out: &mut impl Write) -> io::Result<()> {
    let mut client = PolicyClient::connect(cfg.addr, 1)?;
    let started = Instant::now();
    let mut ring = SnapshotRing::new(WINDOW_FRAMES);
    let mut prev: Option<MetricsSnapshot> = None;
    let mut frame = 0usize;
    loop {
        let snap = match client.metrics() {
            Ok(s) => s,
            Err(e) if cfg.frames == 0 => {
                writeln!(out, "econcast top: connection closed ({e})")?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        ring.push(started.elapsed().as_nanos() as u64, &snap.counters);
        let req_window = match &prev {
            Some(p) => hist_delta(&snap.hist(HIST_REQUEST_NS), &p.hist(HIST_REQUEST_NS)),
            // First frame: everything since the server started.
            None => snap.hist(HIST_REQUEST_NS),
        };
        render(out, frame, &snap, &ring, &req_window, cfg.clear)?;
        prev = Some(snap);
        frame += 1;
        if cfg.frames > 0 && frame >= cfg.frames {
            return Ok(());
        }
        std::thread::sleep(cfg.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use econcast_service::{PolicyServer, RouterConfig, ServerConfig, ServiceConfig};

    #[test]
    fn hist_delta_is_the_window_and_clamps_resets() {
        let mut a = HistSnapshot::default();
        a.buckets = vec![(3, 5), (7, 2)];
        let mut b = HistSnapshot::default();
        b.buckets = vec![(3, 9), (7, 2), (9, 1)];
        let d = hist_delta(&b, &a);
        assert_eq!(d.buckets, vec![(3, 4), (9, 1)]);
        assert_eq!(d.total(), 5);
        // A restarted peer (counts went down across the board) clamps
        // to an empty window, it doesn't underflow.
        assert!(hist_delta(&a, &b).buckets.is_empty());
        assert!(hist_delta(&a, &a).buckets.is_empty());
    }

    #[test]
    fn top_renders_frames_against_a_live_server() {
        let handle = PolicyServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                router: RouterConfig {
                    shards: 1,
                    service: ServiceConfig {
                        workers: Some(1),
                        ..ServiceConfig::default()
                    },
                    ..RouterConfig::default()
                },
                background_prewarm: false,
                ..ServerConfig::default()
            },
        )
        .expect("bind")
        .spawn();
        // Put some traffic on the plane so the view has something to
        // show (the hub is process-global — the exact numbers belong
        // to whichever tests ran first, which is why this test only
        // asserts shape, never totals).
        let batch = crate::perf::service_batch(8);
        let mut client = PolicyClient::connect(handle.addr(), 8).expect("connect");
        client.serve_batch(&batch).expect("serve");
        let mut out = Vec::new();
        run(
            &TopConfig {
                addr: handle.addr(),
                interval: Duration::from_millis(10),
                frames: 2,
                clear: false,
            },
            &mut out,
        )
        .expect("top run");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(text.matches("econcast top — frame").count(), 2);
        assert!(text.contains("req/s"), "rates line:\n{text}");
        assert!(text.contains("% shed"), "ladder line:\n{text}");
        assert!(text.contains("live backends"), "cluster line:\n{text}");
        assert!(!text.contains('\x1b'), "no ANSI when clear=false");
        handle.shutdown();
    }
}
