//! Dense simplex tableau with elementary row operations.
//!
//! The tableau stores the constraint matrix in row-major order with the
//! right-hand side as the last column. Objective rows are kept by the
//! driver in [`crate::simplex`]; this module only provides the storage
//! and the pivot operation, keeping the numerics in one place.

/// A dense row-major matrix used as the simplex working storage.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Tableau {
    /// Creates a zero-filled tableau with `rows × cols` entries.
    pub(crate) fn zeros(rows: usize, cols: usize) -> Self {
        Tableau {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    #[cfg(test)]
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    pub(crate) fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub(crate) fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub(crate) fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a row as a slice (used by tests and kept for debugging
    /// dumps; the solver itself goes through `get`/`set`).
    #[cfg(test)]
    #[inline]
    pub(crate) fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Performs the Gauss–Jordan pivot on `(pivot_row, pivot_col)`:
    /// scales the pivot row so the pivot entry becomes 1, then
    /// eliminates the pivot column from every other row.
    ///
    /// The caller guarantees the pivot entry is bounded away from zero;
    /// the `debug_assert` documents the contract.
    pub(crate) fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let p = self.get(pivot_row, pivot_col);
        debug_assert!(p.abs() > 1e-12, "pivot on a (near-)zero element");
        let inv = 1.0 / p;
        // Scale the pivot row.
        {
            let start = pivot_row * self.cols;
            for v in &mut self.data[start..start + self.cols] {
                *v *= inv;
            }
            // Clamp the pivot entry to exactly 1 to stop error accumulating.
            self.data[start + pivot_col] = 1.0;
        }
        // Eliminate the pivot column from all other rows.
        for r in 0..self.rows {
            if r == pivot_row {
                continue;
            }
            let factor = self.get(r, pivot_col);
            if factor == 0.0 {
                continue;
            }
            let (pr_start, r_start) = (pivot_row * self.cols, r * self.cols);
            for c in 0..self.cols {
                let delta = factor * self.data[pr_start + c];
                self.data[r_start + c] -= delta;
            }
            // The eliminated entry is exactly zero by construction.
            self.data[r_start + pivot_col] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let t = Tableau::zeros(3, 4);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(t.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = Tableau::zeros(2, 2);
        t.set(0, 1, 3.5);
        t.set(1, 0, -2.0);
        assert_eq!(t.get(0, 1), 3.5);
        assert_eq!(t.get(1, 0), -2.0);
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    fn pivot_normalizes_row_and_clears_column() {
        // Rows: [2 4 | 6], [1 1 | 2]; pivot on (0,0).
        let mut t = Tableau::zeros(2, 3);
        t.set(0, 0, 2.0);
        t.set(0, 1, 4.0);
        t.set(0, 2, 6.0);
        t.set(1, 0, 1.0);
        t.set(1, 1, 1.0);
        t.set(1, 2, 2.0);
        t.pivot(0, 0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[0.0, -1.0, -1.0]);
    }

    #[test]
    fn pivot_is_involution_like_on_identity_column() {
        // Pivoting twice on the same unit column leaves rows unchanged.
        let mut t = Tableau::zeros(2, 3);
        t.set(0, 0, 1.0);
        t.set(0, 2, 5.0);
        t.set(1, 1, 1.0);
        t.set(1, 2, 7.0);
        let before = t.clone();
        t.pivot(0, 0);
        for r in 0..2 {
            for c in 0..3 {
                assert!((t.get(r, c) - before.get(r, c)).abs() < 1e-12);
            }
        }
    }
}
