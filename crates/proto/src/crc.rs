//! CRC-16/CCITT-FALSE, the checksum used by the CC2500's packet engine
//! (polynomial 0x1021, init 0xFFFF, no reflection, no final XOR).
//!
//! Implemented bitwise from the polynomial definition; the frames here
//! are tens of bytes, so a lookup table would be over-engineering.

/// Computes CRC-16/CCITT-FALSE over `data`.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Convenience: checks that `data`'s trailing two bytes are the CRC of
/// the preceding bytes. Returns the payload slice on success.
pub fn verify_trailing_crc(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 2 {
        return None;
    }
    let (payload, tail) = data.split_at(data.len() - 2);
    let expected = u16::from_be_bytes([tail[0], tail[1]]);
    (crc16_ccitt(payload) == expected).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_check_value() {
        // The CRC-16/CCITT-FALSE check value for "123456789" is 0x29B1.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn empty_input_is_initial_value() {
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }

    #[test]
    fn verify_roundtrip_and_rejection() {
        let payload = b"econcast";
        let mut framed = payload.to_vec();
        framed.extend_from_slice(&crc16_ccitt(payload).to_be_bytes());
        assert_eq!(verify_trailing_crc(&framed), Some(&payload[..]));
        // Flip one bit anywhere → rejected.
        framed[3] ^= 0x10;
        assert_eq!(verify_trailing_crc(&framed), None);
        // Too short → rejected.
        assert_eq!(verify_trailing_crc(&[0x12]), None);
    }

    proptest! {
        /// Any single-bit flip in payload or CRC is detected (CRC-16
        /// detects all single-bit errors by construction).
        #[test]
        fn prop_single_bit_flips_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..64),
            flip_bit in 0usize..512,
        ) {
            let mut framed = payload.clone();
            framed.extend_from_slice(&crc16_ccitt(&payload).to_be_bytes());
            let bit = flip_bit % (framed.len() * 8);
            framed[bit / 8] ^= 1 << (bit % 8);
            prop_assert_eq!(verify_trailing_crc(&framed), None);
        }

        /// Round-trip always verifies.
        #[test]
        fn prop_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut framed = payload.clone();
            framed.extend_from_slice(&crc16_ccitt(&payload).to_be_bytes());
            prop_assert_eq!(verify_trailing_crc(&framed), Some(&payload[..]));
        }
    }
}
