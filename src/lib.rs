//! # econcast — umbrella crate
//!
//! Re-exports the public API of the EconCast reproduction workspace so
//! downstream users can depend on a single crate. See the individual
//! crates for full documentation:
//!
//! * [`econcast_core`] (re-exported as [`core`]) — node model,
//!   protocol rates, multiplier adaptation;
//! * [`econcast_statespace`] (as [`statespace`]) — collision-free state
//!   space, Gibbs distribution, the (P4) achievable-throughput solver;
//! * [`econcast_oracle`] (as [`oracle`]) — oracle groupput/anyput
//!   solvers (P2)/(P3) and non-clique bounds;
//! * [`econcast_sim`] (as [`sim`]) — the discrete-event simulator;
//! * [`econcast_baselines`] (as [`baselines`]) — Panda / Birthday /
//!   Searchlight models;
//! * [`econcast_analysis`] (as [`analysis`]) — burstiness/latency
//!   analysis and experiment helpers;
//! * [`econcast_proto`] (as [`proto`]) — wire formats;
//! * [`econcast_service`] (as [`service`]) — the batched
//!   policy-serving subsystem: multi-tier policy cache + wire API;
//! * [`econcast_cluster`] (as [`cluster`]) — multi-process deployment:
//!   remote-shard dialers, health-checked failover, supervised
//!   backends;
//! * [`econcast_hw`] (as [`hw`]) — the eZ430-RF2500-SEH testbed
//!   emulation;
//! * [`econcast_lp`] (as [`lp`]) — the simplex solver substrate.

pub use econcast_analysis as analysis;
pub use econcast_baselines as baselines;
pub use econcast_cluster as cluster;
pub use econcast_core as core;
pub use econcast_hw as hw;
pub use econcast_lp as lp;
pub use econcast_oracle as oracle;
pub use econcast_proto as proto;
pub use econcast_service as service;
pub use econcast_sim as sim;
pub use econcast_statespace as statespace;

/// Workspace version, handy for experiment provenance records.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
