//! Frame definitions and their binary encoding.
//!
//! Wire layout (big-endian, CRC-16/CCITT-FALSE over everything before
//! the CRC):
//!
//! ```text
//! Ping:     [0x01][node_id u16][crc u16]                       (5 bytes)
//! Preamble: [0x02][crc u16]                                    (3 bytes)
//! Data:     [0x03][source u16][seq u32][n u8]
//!           { [peer u16][count u32] } × n  [crc u16]           (10 + 6n)
//! ```

use crate::crc::crc16_ccitt;
use crate::error::DecodeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TYPE_PING: u8 = 0x01;
const TYPE_PREAMBLE: u8 = 0x02;
const TYPE_DATA: u8 = 0x03;

/// A recipient's ping (Section VIII-C): the minimal frame a node can
/// send — 0.4 ms on the CC2500 at 250 kbps. Informationless at the
/// protocol level; the node id exists only so testbed traces can be
/// attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingFrame {
    /// Sender of the ping.
    pub node_id: u16,
}

/// One entry of a data packet's reception report: how many packets the
/// source has received from `peer` so far (the payload the paper's
/// observer node logs for post-processing, Section VIII-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceptionReport {
    /// The peer the count refers to.
    pub peer: u16,
    /// Packets received from that peer.
    pub count: u32,
}

/// A data packet: node id, sequence number, reception report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFrame {
    /// Transmitting node.
    pub source: u16,
    /// Per-source sequence number.
    pub seq: u32,
    /// Reception counts for each peer (at most 255 entries).
    pub report: Vec<ReceptionReport>,
}

/// Any EconCast frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Listener ping.
    Ping(PingFrame),
    /// Carrier-sense preamble marker.
    Preamble,
    /// Data packet.
    Data(DataFrame),
}

impl Frame {
    /// Encodes the frame (including CRC) into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into an existing buffer (appends).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        let start = buf.len();
        match self {
            Frame::Ping(p) => {
                buf.put_u8(TYPE_PING);
                buf.put_u16(p.node_id);
            }
            Frame::Preamble => {
                buf.put_u8(TYPE_PREAMBLE);
            }
            Frame::Data(d) => {
                assert!(
                    d.report.len() <= u8::MAX as usize,
                    "reception report capped at 255 entries"
                );
                buf.put_u8(TYPE_DATA);
                buf.put_u16(d.source);
                buf.put_u32(d.seq);
                buf.put_u8(d.report.len() as u8);
                for r in &d.report {
                    buf.put_u16(r.peer);
                    buf.put_u32(r.count);
                }
            }
        }
        let crc = crc16_ccitt(&buf[start..]);
        buf.put_u16(crc);
    }

    /// The exact encoded size in bytes, CRC included.
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::Ping(_) => 1 + 2 + 2,
            Frame::Preamble => 1 + 2,
            Frame::Data(d) => 1 + 2 + 4 + 1 + 6 * d.report.len() + 2,
        }
    }

    /// Decodes one frame from the start of `data`, returning the frame
    /// and the number of bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(Frame, usize), DecodeError> {
        if data.is_empty() {
            return Err(DecodeError::Truncated {
                needed: 3,
                available: 0,
            });
        }
        let total_len = match data[0] {
            TYPE_PING => 5,
            TYPE_PREAMBLE => 3,
            TYPE_DATA => {
                if data.len() < 8 {
                    return Err(DecodeError::Truncated {
                        needed: 10,
                        available: data.len(),
                    });
                }
                let n = data[7] as usize;
                10 + 6 * n
            }
            t => return Err(DecodeError::UnknownFrameType(t)),
        };
        if data.len() < total_len {
            return Err(DecodeError::Truncated {
                needed: total_len,
                available: data.len(),
            });
        }
        let frame_bytes = &data[..total_len];
        let (payload, tail) = frame_bytes.split_at(total_len - 2);
        let expected = u16::from_be_bytes([tail[0], tail[1]]);
        if crc16_ccitt(payload) != expected {
            return Err(DecodeError::BadChecksum);
        }

        let mut cur = &payload[1..]; // skip the type octet
        let frame = match data[0] {
            TYPE_PING => Frame::Ping(PingFrame {
                node_id: cur.get_u16(),
            }),
            TYPE_PREAMBLE => Frame::Preamble,
            TYPE_DATA => {
                let source = cur.get_u16();
                let seq = cur.get_u32();
                let n = cur.get_u8() as usize;
                if cur.remaining() != 6 * n {
                    return Err(DecodeError::MalformedLength);
                }
                let mut report = Vec::with_capacity(n);
                for _ in 0..n {
                    report.push(ReceptionReport {
                        peer: cur.get_u16(),
                        count: cur.get_u32(),
                    });
                }
                Frame::Data(DataFrame {
                    source,
                    seq,
                    report,
                })
            }
            _ => unreachable!("validated above"),
        };
        Ok((frame, total_len))
    }

    /// Airtime of this frame at `bitrate` bits per second — e.g. a
    /// 5-byte ping at the CC2500's 250 kbps takes 0.16 ms of payload
    /// time (the paper's 0.4 ms figure includes preamble/sync/turnaround
    /// overhead, which the radio model in `econcast-hw` adds).
    pub fn airtime_s(&self, bitrate_bps: f64) -> f64 {
        (self.encoded_len() * 8) as f64 / bitrate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ping_roundtrip_and_size() {
        let f = Frame::Ping(PingFrame { node_id: 7 });
        let b = f.encode();
        assert_eq!(b.len(), 5);
        assert_eq!(b.len(), f.encoded_len());
        let (decoded, used) = Frame::decode(&b).unwrap();
        assert_eq!(decoded, f);
        assert_eq!(used, 5);
    }

    #[test]
    fn preamble_roundtrip() {
        let f = Frame::Preamble;
        let b = f.encode();
        assert_eq!(b.len(), 3);
        assert_eq!(Frame::decode(&b).unwrap().0, f);
    }

    #[test]
    fn data_roundtrip_with_report() {
        let f = Frame::Data(DataFrame {
            source: 3,
            seq: 123_456,
            report: vec![
                ReceptionReport { peer: 0, count: 10 },
                ReceptionReport { peer: 1, count: 0 },
                ReceptionReport {
                    peer: 4,
                    count: 9999,
                },
            ],
        });
        let b = f.encode();
        assert_eq!(b.len(), 10 + 18);
        let (decoded, used) = Frame::decode(&b).unwrap();
        assert_eq!(decoded, f);
        assert_eq!(used, b.len());
    }

    #[test]
    fn corrupted_frame_rejected() {
        let mut b = Frame::Ping(PingFrame { node_id: 9 }).encode().to_vec();
        b[1] ^= 0xFF;
        assert_eq!(Frame::decode(&b), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(
            Frame::decode(&[0x7F, 0, 0]),
            Err(DecodeError::UnknownFrameType(0x7F))
        );
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let b = Frame::Data(DataFrame {
            source: 1,
            seq: 2,
            report: vec![ReceptionReport { peer: 0, count: 1 }],
        })
        .encode();
        match Frame::decode(&b[..12]) {
            Err(DecodeError::Truncated { needed, available }) => {
                assert_eq!(needed, 16);
                assert_eq!(available, 12);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(matches!(
            Frame::decode(&[]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        // A frame followed by more data: decode consumes exactly one
        // frame and reports its length.
        let mut buf = Frame::Preamble.encode().to_vec();
        buf.extend_from_slice(&Frame::Ping(PingFrame { node_id: 2 }).encode());
        let (f1, used) = Frame::decode(&buf).unwrap();
        assert_eq!(f1, Frame::Preamble);
        let (f2, _) = Frame::decode(&buf[used..]).unwrap();
        assert_eq!(f2, Frame::Ping(PingFrame { node_id: 2 }));
    }

    #[test]
    fn airtime_scales_with_size() {
        let ping = Frame::Ping(PingFrame { node_id: 0 });
        // 5 bytes at 250 kbps = 0.16 ms.
        assert!((ping.airtime_s(250_000.0) - 0.16e-3).abs() < 1e-12);
        let data = Frame::Data(DataFrame {
            source: 0,
            seq: 0,
            report: vec![ReceptionReport { peer: 1, count: 1 }; 10],
        });
        assert!(data.airtime_s(250_000.0) > ping.airtime_s(250_000.0));
    }

    proptest! {
        /// Arbitrary data frames round-trip exactly.
        #[test]
        fn prop_data_roundtrip(
            source in any::<u16>(),
            seq in any::<u32>(),
            report in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..50),
        ) {
            let f = Frame::Data(DataFrame {
                source,
                seq,
                report: report
                    .into_iter()
                    .map(|(peer, count)| ReceptionReport { peer, count })
                    .collect(),
            });
            let b = f.encode();
            prop_assert_eq!(b.len(), f.encoded_len());
            let (decoded, used) = Frame::decode(&b).unwrap();
            prop_assert_eq!(decoded, f);
            prop_assert_eq!(used, b.len());
        }

        /// Random garbage never panics the decoder.
        #[test]
        fn prop_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Frame::decode(&bytes);
        }
    }
}
