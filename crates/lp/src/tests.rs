//! Unit and property tests for the simplex solver.

use crate::{LpError, Problem, Relation};
use proptest::prelude::*;

const TOL: f64 = 1e-7;

#[test]
fn textbook_two_variable_max() {
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
    let mut p = Problem::maximize(&[3.0, 2.0]);
    p.constrain(&[1.0, 1.0], Relation::Le, 4.0);
    p.constrain(&[1.0, 3.0], Relation::Le, 6.0);
    let s = p.solve().unwrap();
    assert!((s.objective - 12.0).abs() < TOL);
    assert!((s.x[0] - 4.0).abs() < TOL);
    assert!(s.x[1].abs() < TOL);
}

#[test]
fn minimization_orientation_is_restored() {
    // min x + y s.t. x + 2y >= 4, 3x + y >= 6 → optimum at (1.6, 1.2), value 2.8
    let mut p = Problem::minimize(&[1.0, 1.0]);
    p.constrain(&[1.0, 2.0], Relation::Ge, 4.0);
    p.constrain(&[3.0, 1.0], Relation::Ge, 6.0);
    let s = p.solve().unwrap();
    assert!((s.objective - 2.8).abs() < TOL, "got {}", s.objective);
    assert!((s.x[0] - 1.6).abs() < TOL);
    assert!((s.x[1] - 1.2).abs() < TOL);
}

#[test]
fn equality_constraints_are_honored() {
    // max x + y s.t. x + y = 3, x <= 2
    let mut p = Problem::maximize(&[1.0, 1.0]);
    p.constrain(&[1.0, 1.0], Relation::Eq, 3.0);
    p.constrain(&[1.0, 0.0], Relation::Le, 2.0);
    let s = p.solve().unwrap();
    assert!((s.objective - 3.0).abs() < TOL);
    assert!((s.x[0] + s.x[1] - 3.0).abs() < TOL);
}

#[test]
fn infeasible_system_is_detected() {
    // x <= 1 and x >= 2 cannot both hold.
    let mut p = Problem::maximize(&[1.0]);
    p.constrain(&[1.0], Relation::Le, 1.0);
    p.constrain(&[1.0], Relation::Ge, 2.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
}

#[test]
fn unbounded_objective_is_detected() {
    // max x with only x >= 0 (no upper bound).
    let mut p = Problem::maximize(&[1.0, 0.0]);
    p.constrain(&[0.0, 1.0], Relation::Le, 5.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
}

#[test]
fn negative_rhs_rows_are_normalized() {
    // -x - y <= -2  ⇔  x + y >= 2; min x + y → 2.
    let mut p = Problem::minimize(&[1.0, 1.0]);
    p.constrain(&[-1.0, -1.0], Relation::Le, -2.0);
    let s = p.solve().unwrap();
    assert!((s.objective - 2.0).abs() < TOL);
}

#[test]
fn degenerate_problem_terminates() {
    // Classic degeneracy: multiple constraints tight at the optimum.
    let mut p = Problem::maximize(&[1.0, 1.0]);
    p.constrain(&[1.0, 0.0], Relation::Le, 1.0);
    p.constrain(&[0.0, 1.0], Relation::Le, 1.0);
    p.constrain(&[1.0, 1.0], Relation::Le, 2.0);
    p.constrain(&[2.0, 1.0], Relation::Le, 3.0);
    let s = p.solve().unwrap();
    assert!((s.objective - 2.0).abs() < TOL);
}

#[test]
fn redundant_equality_rows_are_tolerated() {
    // The same equality twice produces a redundant artificial row that
    // stays basic at zero after phase 1.
    let mut p = Problem::maximize(&[1.0, 2.0]);
    p.constrain(&[1.0, 1.0], Relation::Eq, 2.0);
    p.constrain(&[2.0, 2.0], Relation::Eq, 4.0);
    let s = p.solve().unwrap();
    assert!((s.objective - 4.0).abs() < TOL);
    assert!(s.x[0].abs() < TOL);
    assert!((s.x[1] - 2.0).abs() < TOL);
}

#[test]
fn dimension_mismatch_is_reported() {
    let mut p = Problem::maximize(&[1.0, 1.0]);
    p.constrain(&[1.0], Relation::Le, 1.0);
    assert_eq!(
        p.solve().unwrap_err(),
        LpError::DimensionMismatch {
            expected: 2,
            got: 1
        }
    );
}

#[test]
fn non_finite_input_is_reported() {
    let mut p = Problem::maximize(&[1.0]);
    p.constrain(&[f64::NAN], Relation::Le, 1.0);
    assert_eq!(p.solve().unwrap_err(), LpError::NotFinite);
}

#[test]
fn sparse_constraint_builder_matches_dense() {
    let mut a = Problem::maximize(&[1.0, 2.0, 3.0]);
    a.constrain(&[0.0, 1.0, 1.0], Relation::Le, 2.0);
    let mut b = Problem::maximize(&[1.0, 2.0, 3.0]);
    b.constrain_sparse(&[(1, 1.0), (2, 1.0)], Relation::Le, 2.0);
    // Both unbounded in x0; bound it to compare optima.
    a.constrain(&[1.0, 0.0, 0.0], Relation::Le, 1.0);
    b.constrain_sparse(&[(0, 1.0)], Relation::Le, 1.0);
    let (sa, sb) = (a.solve().unwrap(), b.solve().unwrap());
    assert!((sa.objective - sb.objective).abs() < TOL);
}

#[test]
fn sparse_out_of_range_index_is_reported() {
    let mut p = Problem::maximize(&[1.0]);
    p.constrain_sparse(&[(3, 1.0)], Relation::Le, 1.0);
    assert!(matches!(
        p.solve().unwrap_err(),
        LpError::DimensionMismatch { .. }
    ));
}

#[test]
fn zero_constraint_problem_with_zero_objective() {
    // Degenerate but legal: no constraints, zero objective → optimum 0 at origin.
    let p = Problem::maximize(&[0.0, 0.0]);
    let s = p.solve().unwrap();
    assert_eq!(s.objective, 0.0);
    assert_eq!(s.x, vec![0.0, 0.0]);
}

#[test]
fn econcast_shaped_homogeneous_lp_matches_closed_form() {
    // (P2) for a homogeneous network: max Σα_i s.t.
    //   α_i L + β_i X ≤ ρ, α_i + β_i ≤ 1, Σβ_i ≤ 1, α_i ≤ Σ_{j≠i} β_j.
    // Closed form: β* = ρ/(X+(N−1)L), α* = (N−1)β*, T* = Nα*.
    let (n, rho, l, x) = (5usize, 10e-6, 500e-6, 500e-6);
    let nv = 2 * n; // α_0..α_4, β_0..β_4
    let mut obj = vec![0.0; nv];
    for i in 0..n {
        obj[i] = 1.0;
    }
    let mut p = Problem::maximize(&obj);
    for i in 0..n {
        p.constrain_sparse(&[(i, l), (n + i, x)], Relation::Le, rho);
        p.constrain_sparse(&[(i, 1.0), (n + i, 1.0)], Relation::Le, 1.0);
        let mut row: Vec<(usize, f64)> = vec![(i, 1.0)];
        for j in 0..n {
            if j != i {
                row.push((n + j, -1.0));
            }
        }
        p.constrain_sparse(&row, Relation::Le, 0.0);
    }
    let all_beta: Vec<(usize, f64)> = (0..n).map(|j| (n + j, 1.0)).collect();
    p.constrain_sparse(&all_beta, Relation::Le, 1.0);
    let s = p.solve().unwrap();
    let beta_star = rho / (x + (n as f64 - 1.0) * l);
    let t_star = n as f64 * (n as f64 - 1.0) * beta_star;
    assert!(
        (s.objective - t_star).abs() < 1e-9,
        "LP {} vs closed form {}",
        s.objective,
        t_star
    );
}

proptest! {
    /// Any reported optimum must be a feasible point.
    #[test]
    fn prop_solution_is_feasible(
        n in 1usize..5,
        m in 1usize..6,
        seed_coeffs in proptest::collection::vec(-5.0f64..5.0, 0..30),
        seed_rhs in proptest::collection::vec(0.1f64..10.0, 0..6),
        obj in proptest::collection::vec(-3.0f64..3.0, 1..5),
    ) {
        let mut objective = obj;
        objective.resize(n, 0.5);
        let mut p = Problem::maximize(&objective);
        // Box constraints keep everything bounded and feasible.
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            p.constrain(&row, Relation::Le, 10.0);
        }
        for k in 0..m {
            let mut row = vec![0.0; n];
            for (i, r) in row.iter_mut().enumerate() {
                *r = seed_coeffs.get(k * n + i).copied().unwrap_or(1.0).abs();
            }
            let rhs = seed_rhs.get(k).copied().unwrap_or(5.0);
            p.constrain(&row, Relation::Le, rhs);
        }
        let s = p.solve().unwrap();
        prop_assert!(p.is_feasible(&s.x, 1e-6));
        prop_assert!((p.objective_at(&s.x) - s.objective).abs() < 1e-6);
    }

    /// The optimum dominates a spread of random feasible points
    /// (scaled-down corners of the feasible box).
    #[test]
    fn prop_optimum_dominates_random_feasible_points(
        n in 1usize..4,
        obj in proptest::collection::vec(0.0f64..3.0, 1..4),
        scale in 0.0f64..1.0,
    ) {
        let mut objective = obj;
        objective.resize(n, 1.0);
        let mut p = Problem::maximize(&objective);
        let mut row_all = vec![1.0; n];
        p.constrain(&row_all, Relation::Le, 4.0);
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            p.constrain(&row, Relation::Le, 2.0);
        }
        let s = p.solve().unwrap();
        // Candidate: x_i = scale * 4/n (inside the simplex and the box for scale<=... ).
        let cand = vec![(scale * 4.0 / n as f64).min(2.0); n];
        row_all.iter_mut().for_each(|v| *v = 1.0);
        if p.is_feasible(&cand, 0.0) {
            prop_assert!(p.objective_at(&cand) <= s.objective + 1e-6);
        }
    }

    /// Strong duality check on inequality-form problems: construct the
    /// dual explicitly and verify the optima coincide.
    #[test]
    fn prop_strong_duality(
        n in 1usize..4,
        m in 1usize..4,
        a_seed in proptest::collection::vec(0.1f64..4.0, 1..16),
        b_seed in proptest::collection::vec(0.5f64..8.0, 1..4),
        c_seed in proptest::collection::vec(0.1f64..3.0, 1..4),
    ) {
        // Primal: max c·x s.t. A x <= b, x >= 0 with A > 0 (bounded, feasible).
        let at = |r: usize, c: usize| a_seed[(r * n + c) % a_seed.len()];
        let b = |r: usize| b_seed[r % b_seed.len()];
        let c = |j: usize| c_seed[j % c_seed.len()];

        let mut primal = Problem::maximize(&(0..n).map(c).collect::<Vec<_>>());
        for r in 0..m {
            let row: Vec<f64> = (0..n).map(|j| at(r, j)).collect();
            primal.constrain(&row, Relation::Le, b(r));
        }
        let ps = primal.solve().unwrap();

        // Dual: min b·y s.t. Aᵀ y >= c, y >= 0.
        let mut dual = Problem::minimize(&(0..m).map(b).collect::<Vec<_>>());
        for j in 0..n {
            let row: Vec<f64> = (0..m).map(|r| at(r, j)).collect();
            dual.constrain(&row, Relation::Ge, c(j));
        }
        let ds = dual.solve().unwrap();
        prop_assert!(
            (ps.objective - ds.objective).abs() < 1e-6 * (1.0 + ps.objective.abs()),
            "primal {} dual {}", ps.objective, ds.objective
        );
    }
}
