//! Groupput bounds for non-clique topologies (Section IV-C).
//!
//! Exact maximum groupput is hard in general graphs because spatial
//! reuse allows simultaneous non-interfering transmissions. The paper
//! brackets it:
//!
//! * **lower bound** `T̲*_nc` — solve (P2) with (12) replaced by the
//!   neighborhood constraint `α_i ≤ Σ_{j ∈ N(i)} β_j` (a node can only
//!   usefully listen while a *neighbor* transmits), keeping the global
//!   single-transmitter constraint (11): any such schedule is
//!   collision-free in the graph, so the bound is achievable;
//! * **upper bound** `T̄*_nc` — the same LP with (11) *removed*,
//!   allowing arbitrarily overlapping transmissions.
//!
//! Whenever the two coincide (they do on all of Fig. 6's grids) the
//! exact `T*_nc` is known.

use crate::solution::OracleSolution;
use econcast_core::{NodeParams, Topology};
use econcast_lp::{Problem, Relation};

/// The bracket around the non-clique oracle groupput.
#[derive(Debug, Clone, PartialEq)]
pub struct NonCliqueBounds {
    /// Achievable lower bound `T̲*_nc` with its schedule.
    pub lower: OracleSolution,
    /// Relaxed upper bound `T̄*_nc` with its (possibly unrealizable)
    /// schedule.
    pub upper: OracleSolution,
}

impl NonCliqueBounds {
    /// When the bounds agree within `tol` (relative), the exact oracle
    /// groupput is known; returns it.
    pub fn exact(&self, tol: f64) -> Option<f64> {
        let (lo, hi) = (self.lower.throughput, self.upper.throughput);
        ((hi - lo).abs() <= tol * hi.max(1e-300)).then_some(hi)
    }
}

/// Solves the neighborhood-restricted (P2) for both bounds.
///
/// # Panics
///
/// Panics when `nodes.len() != topology.len()` or the network is empty.
pub fn non_clique_groupput_bounds(nodes: &[NodeParams], topology: &Topology) -> NonCliqueBounds {
    assert_eq!(
        nodes.len(),
        topology.len(),
        "one parameter set per topology node required"
    );
    assert!(!nodes.is_empty());
    NonCliqueBounds {
        lower: solve_variant(nodes, topology, true),
        upper: solve_variant(nodes, topology, false),
    }
}

/// Shared LP builder; `single_transmitter` toggles constraint (11).
fn solve_variant(
    nodes: &[NodeParams],
    topology: &Topology,
    single_transmitter: bool,
) -> OracleSolution {
    let n = nodes.len();
    let mut obj = vec![0.0; 2 * n];
    for o in obj.iter_mut().take(n) {
        *o = 1.0;
    }
    let mut p = Problem::maximize(&obj);
    for (i, node) in nodes.iter().enumerate() {
        // (9)
        p.constrain_sparse(
            &[(i, node.listen_w), (n + i, node.transmit_w)],
            Relation::Le,
            node.budget_w,
        );
        // (10)
        p.constrain_sparse(&[(i, 1.0), (n + i, 1.0)], Relation::Le, 1.0);
        // Neighborhood version of (12): α_i ≤ Σ_{j ∈ N(i)} β_j.
        let mut row: Vec<(usize, f64)> = vec![(i, 1.0)];
        topology.for_each_neighbor(i, |j| row.push((n + j, -1.0)));
        p.constrain_sparse(&row, Relation::Le, 0.0);
    }
    if single_transmitter {
        // (11)
        let all_beta: Vec<(usize, f64)> = (0..n).map(|j| (n + j, 1.0)).collect();
        p.constrain_sparse(&all_beta, Relation::Le, 1.0);
    }
    let sol = p
        .solve()
        .expect("the neighborhood LP is always feasible (all-sleep)");
    OracleSolution {
        throughput: sol.objective,
        alpha: sol.x[..n].to_vec(),
        beta: sol.x[n..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groupput::oracle_groupput;

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    #[test]
    fn clique_topology_reduces_to_p2() {
        let nodes = homogeneous(5);
        let clique = Topology::clique(5);
        let bounds = non_clique_groupput_bounds(&nodes, &clique);
        let p2 = oracle_groupput(&nodes);
        // The lower bound *is* (P2) when the graph is complete.
        assert!((bounds.lower.throughput - p2.throughput).abs() < 1e-9);
        // In the severely constrained regime (11) is slack, so removing
        // it changes nothing and the bracket is tight.
        assert!(bounds.exact(1e-9).is_some());
    }

    #[test]
    fn fig6_grids_have_tight_brackets() {
        // "for all the grid topologies considered, the upper and lower
        // bounds of T*_nc are the same" (Section VII-E).
        for k in [2usize, 3, 4, 5] {
            let n = k * k;
            let nodes = homogeneous(n);
            let grid = Topology::square_grid(k);
            let bounds = non_clique_groupput_bounds(&nodes, &grid);
            assert!(
                bounds.exact(1e-9).is_some(),
                "grid {k}x{k}: lower {} upper {}",
                bounds.lower.throughput,
                bounds.upper.throughput
            );
        }
    }

    #[test]
    fn bounds_are_ordered_and_feasible() {
        let nodes = homogeneous(9);
        let grid = Topology::square_grid(3);
        let b = non_clique_groupput_bounds(&nodes, &grid);
        assert!(b.lower.throughput <= b.upper.throughput + 1e-9);
        assert!(b.lower.is_feasible(&nodes, 1e-8));
        // Neighborhood constraint holds for the lower bound.
        for i in 0..9 {
            let cover: f64 = grid.neighbors(i).iter().map(|&j| b.lower.beta[j]).sum();
            assert!(b.lower.alpha[i] <= cover + 1e-8);
        }
    }

    #[test]
    fn grid_groupput_grows_with_n() {
        // More nodes harvest more total energy: Fig. 6's oracle curve
        // increases with N.
        let mut last = 0.0;
        for k in [2usize, 3, 4, 5, 6] {
            let n = k * k;
            let b = non_clique_groupput_bounds(&homogeneous(n), &Topology::square_grid(k));
            let t = b.exact(1e-9).expect("tight bracket");
            assert!(t > last, "grid {k}x{k}: {t} ≤ previous {last}");
            last = t;
        }
    }

    #[test]
    fn line_topology_bracket() {
        // A 3-node line: ends can only hear the middle. Bounds must
        // still be ordered; with symmetric parameters the bracket is
        // tight in the constrained regime.
        let nodes = homogeneous(3);
        let line = Topology::line(3);
        let b = non_clique_groupput_bounds(&nodes, &line);
        assert!(b.lower.throughput <= b.upper.throughput + 1e-12);
        assert!(b.lower.throughput > 0.0);
        // The clique oracle dominates the line's lower bound (hearing
        // fewer nodes can't help).
        let clique_t = oracle_groupput(&nodes).throughput;
        assert!(b.lower.throughput <= clique_t + 1e-9);
    }

    #[test]
    fn isolated_node_cannot_listen_or_help() {
        // 2 connected nodes + 1 isolate: the isolate's α must be 0.
        let nodes = homogeneous(3);
        let topo = Topology::from_edges(3, &[(0, 1)]);
        let b = non_clique_groupput_bounds(&nodes, &topo);
        assert!(b.lower.alpha[2].abs() < 1e-9);
        assert!(b.upper.alpha[2].abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one parameter set per topology node")]
    fn mismatched_sizes_rejected() {
        non_clique_groupput_bounds(&homogeneous(3), &Topology::clique(4));
    }
}

/// Extension beyond the paper: the analogous bracket for the oracle
/// *anyput* in non-clique topologies. (P3) is restricted so a node's
/// reception shares `χ_{i,j}` exist only for neighbor pairs — a
/// transmission can only be covered by a listener in range. The lower
/// bound keeps the global single-transmitter constraint (11); the
/// upper bound drops it, admitting spatial reuse.
pub fn non_clique_anyput_bounds(nodes: &[NodeParams], topology: &Topology) -> NonCliqueBounds {
    assert_eq!(
        nodes.len(),
        topology.len(),
        "one parameter set per topology node required"
    );
    assert!(!nodes.is_empty());
    NonCliqueBounds {
        lower: solve_anyput_variant(nodes, topology, true),
        upper: solve_anyput_variant(nodes, topology, false),
    }
}

/// Neighborhood-restricted (P3); `single_transmitter` toggles (11).
/// Variable layout: `α` at `0..n`, `β` at `n..2n`, then one `χ_{i,j}`
/// per directed neighbor pair in `(i, j)` lexicographic order.
fn solve_anyput_variant(
    nodes: &[NodeParams],
    topology: &Topology,
    single_transmitter: bool,
) -> OracleSolution {
    let n = nodes.len();
    // Index the directed neighbor pairs.
    let mut chi_index = std::collections::HashMap::new();
    let mut next = 2 * n;
    for i in 0..n {
        topology.for_each_neighbor(i, |j| {
            chi_index.insert((i, j), next);
            next += 1;
        });
    }
    let mut obj = vec![0.0; next];
    for o in obj.iter_mut().skip(n).take(n) {
        *o = 1.0;
    }
    let mut p = Problem::maximize(&obj);
    for (i, node) in nodes.iter().enumerate() {
        // (9) and (10).
        p.constrain_sparse(
            &[(i, node.listen_w), (n + i, node.transmit_w)],
            Relation::Le,
            node.budget_w,
        );
        p.constrain_sparse(&[(i, 1.0), (n + i, 1.0)], Relation::Le, 1.0);
        // (14): β_i ≤ Σ_{j ∈ N(i)} χ_{i,j} — or β_i = 0 for isolates.
        let mut row: Vec<(usize, f64)> = vec![(n + i, 1.0)];
        topology.for_each_neighbor(i, |j| row.push((chi_index[&(i, j)], -1.0)));
        p.constrain_sparse(&row, Relation::Le, 0.0);
        // (15): α_i = Σ_{j ∈ N(i)} χ_{j,i}.
        let mut row: Vec<(usize, f64)> = vec![(i, 1.0)];
        topology.for_each_neighbor(i, |j| row.push((chi_index[&(j, i)], -1.0)));
        p.constrain_sparse(&row, Relation::Eq, 0.0);
    }
    if single_transmitter {
        let all_beta: Vec<(usize, f64)> = (0..n).map(|j| (n + j, 1.0)).collect();
        p.constrain_sparse(&all_beta, Relation::Le, 1.0);
    }
    let sol = p
        .solve()
        .expect("the neighborhood anyput LP is always feasible (all-sleep)");
    OracleSolution {
        throughput: sol.objective,
        alpha: sol.x[..n].to_vec(),
        beta: sol.x[n..2 * n].to_vec(),
    }
}

#[cfg(test)]
mod anyput_tests {
    use super::*;
    use crate::anyput::oracle_anyput;

    fn homogeneous(n: usize) -> Vec<NodeParams> {
        vec![NodeParams::from_microwatts(10.0, 500.0, 500.0); n]
    }

    #[test]
    fn clique_reduces_to_p3() {
        let nodes = homogeneous(5);
        let b = non_clique_anyput_bounds(&nodes, &Topology::clique(5));
        let p3 = oracle_anyput(&nodes).throughput;
        assert!((b.lower.throughput - p3).abs() < 1e-9);
        // Constrained regime: (11) slack, bracket tight.
        assert!(b.exact(1e-9).is_some());
    }

    #[test]
    fn grid_anyput_bracket_is_ordered_and_below_cap() {
        for k in [2usize, 3, 4] {
            let n = k * k;
            let nodes = homogeneous(n);
            let b = non_clique_anyput_bounds(&nodes, &Topology::square_grid(k));
            assert!(b.lower.throughput <= b.upper.throughput + 1e-9);
            // Anyput ≤ 1 only holds under (11); the relaxed upper bound
            // may exceed it via spatial reuse, but never per node.
            assert!(b.lower.throughput <= 1.0 + 1e-9);
            assert!(b.lower.throughput > 0.0);
        }
    }

    #[test]
    fn isolated_node_transmits_nothing() {
        let nodes = homogeneous(3);
        let topo = Topology::from_edges(3, &[(0, 1)]);
        let b = non_clique_anyput_bounds(&nodes, &topo);
        assert!(b.upper.beta[2].abs() < 1e-9);
        assert!(b.lower.beta[2].abs() < 1e-9);
    }

    #[test]
    fn line_anyput_dominated_by_clique() {
        let nodes = homogeneous(4);
        let line = non_clique_anyput_bounds(&nodes, &Topology::line(4));
        let clique = oracle_anyput(&nodes).throughput;
        assert!(line.lower.throughput <= clique + 1e-9);
    }
}
