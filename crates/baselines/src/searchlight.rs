//! Searchlight (reference 19 of the paper): deterministic slotted anchor+probe discovery.
//!
//! Model: time is slotted (50 ms slots in the paper's comparison,
//! footnote 7). Each node is active in 2 of every `t` slots — a fixed
//! *anchor* slot and a *probe* slot that sweeps the offsets
//! `1..⌈t/2⌉`; striped probing guarantees two nodes' active slots
//! overlap within `(t/2)²` slots in the worst case. The power budget
//! sets the duty cycle: `2/t · P_slot ≤ ρ` where `P_slot` is the awake
//! power (listening with short beacons at the slot edges).
//!
//! Throughput bound: Searchlight optimizes worst-case pairwise
//! *latency*, not throughput; the paper derives an upper bound on its
//! throughput by multiplying the pairwise rate by `N − 1` ("assuming
//! all other N−1 nodes will be receiving when one node transmits" —
//! generous to Searchlight) and notes that the inverse of average
//! latency plays the role of the pairwise rate.

use econcast_core::NodeParams;

/// Searchlight schedule model for a homogeneous network.
#[derive(Debug, Clone, Copy)]
pub struct Searchlight {
    /// Number of nodes.
    pub n: usize,
    /// Node power parameters.
    pub params: NodeParams,
    /// Slot length in packet-time units (50 ms slots / 1 ms packets =
    /// 50 in the paper's comparison).
    pub slot_packets: f64,
    /// Beacon (packet) length in packet-time units (= 1 by definition).
    pub beacon_packets: f64,
}

impl Searchlight {
    /// The paper's comparison configuration: 50 ms slots, 1 ms beacons
    /// (footnote 7), expressed in packet-time units.
    pub fn paper_setup(n: usize, params: NodeParams) -> Self {
        assert!(n >= 2);
        Searchlight {
            n,
            params,
            slot_packets: 50.0,
            beacon_packets: 1.0,
        }
    }

    /// Awake power of an active slot: listening for the slot with two
    /// beacons transmitted at its edges.
    fn slot_power(&self) -> f64 {
        let p = &self.params;
        let beacon_frac = (2.0 * self.beacon_packets / self.slot_packets).min(1.0);
        p.listen_w * (1.0 - beacon_frac) + p.transmit_w * beacon_frac
    }

    /// The schedule period `t` in slots implied by the power budget:
    /// the largest even `t` with duty cycle `2/t` affordable. The
    /// 2%-duty-cycle example of Fig. 5 (ρ = 10 µW, L = X = 500 µW)
    /// yields `t = 100`.
    pub fn period_slots(&self) -> usize {
        let duty = self.params.budget_w / self.slot_power();
        assert!(
            duty > 0.0,
            "budget cannot sustain any duty cycle at these powers"
        );
        // The epsilon absorbs floating-point noise so an exact 2% duty
        // cycle yields t = 100, not 101.
        let t = ((2.0 / duty) - 1e-9).ceil() as usize;
        let t = t.max(2);
        t + (t % 2) // round up to even
    }

    /// Worst-case pairwise discovery latency in packet-time units:
    /// `(t/2)²` slots for striped probing. With the paper's parameters
    /// this is 2500 slots = 125 s, the bound drawn in Fig. 5(a).
    pub fn worst_case_latency(&self) -> f64 {
        let half = self.period_slots() as f64 / 2.0;
        half * half * self.slot_packets
    }

    /// Average pairwise discovery latency (uniform random phase →
    /// half the worst case), packet-time units.
    pub fn average_latency(&self) -> f64 {
        0.5 * self.worst_case_latency()
    }

    /// Upper bound on groupput (receiver-packets per packet-time): the
    /// pairwise encounter rate delivering a full slot of payload,
    /// multiplied by `N − 1` exactly as the paper's comparison does.
    pub fn groupput_upper_bound(&self) -> f64 {
        (self.n as f64 - 1.0) * self.slot_packets / self.average_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params() -> NodeParams {
        NodeParams::from_microwatts(10.0, 500.0, 500.0)
    }

    #[test]
    fn paper_period_is_100_slots() {
        let s = Searchlight::paper_setup(5, paper_params());
        // Duty cycle = ρ / P_slot = 10/500 = 2% → t = 100.
        assert_eq!(s.period_slots(), 100);
    }

    #[test]
    fn paper_worst_case_is_125_seconds() {
        // (t/2)² slots = 2500 slots × 50 ms = 125 s; in packet-times
        // (1 ms) that is 125 000 — the Fig. 5(a) vertical line.
        let s = Searchlight::paper_setup(5, paper_params());
        assert!((s.worst_case_latency() - 125_000.0).abs() < 1e-9);
    }

    #[test]
    fn richer_budget_shortens_period_and_latency() {
        let poor = Searchlight::paper_setup(5, paper_params());
        let rich = Searchlight::paper_setup(5, NodeParams::from_microwatts(50.0, 500.0, 500.0));
        assert!(rich.period_slots() < poor.period_slots());
        assert!(rich.worst_case_latency() < poor.worst_case_latency());
    }

    #[test]
    fn throughput_bound_scales_with_n() {
        let s5 = Searchlight::paper_setup(5, paper_params());
        let s10 = Searchlight::paper_setup(10, paper_params());
        let ratio = s10.groupput_upper_bound() / s5.groupput_upper_bound();
        assert!((ratio - 9.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn searchlight_below_oracle() {
        let p = paper_params();
        let s = Searchlight::paper_setup(5, p);
        let beta = p.budget_w / (p.transmit_w + 4.0 * p.listen_w);
        let t_star = 20.0 * beta; // 0.08
        assert!(
            s.groupput_upper_bound() < t_star,
            "bound {} not below oracle {}",
            s.groupput_upper_bound(),
            t_star
        );
    }

    #[test]
    fn slot_power_mixes_beacons() {
        let mut s = Searchlight::paper_setup(5, NodeParams::from_microwatts(10.0, 400.0, 900.0));
        // 2 beacons of 1 packet in a 50-packet slot → 4% at X.
        let expected = 400e-6 * 0.96 + 900e-6 * 0.04;
        assert!((s.slot_power() - expected).abs() < 1e-12);
        // Degenerate tiny slots clamp the beacon fraction.
        s.slot_packets = 1.0;
        assert!((s.slot_power() - 900e-6).abs() < 1e-12);
    }
}
