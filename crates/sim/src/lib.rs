//! # econcast-sim — a continuous-time discrete-event simulator
//!
//! Simulates networks of nodes running EconCast (Section V) in
//! continuous time, reproducing the evaluation setup of Section VII:
//!
//! * nodes transition between sleep, listen and transmit with the
//!   exponential rates (18a)–(18f), re-drawn whenever the rates change
//!   (exact under the exponential's memorylessness);
//! * carrier sensing is perfect with zero propagation delay
//!   (Section III-C): a node's channel is busy when any *neighbor*
//!   transmits; busy channels freeze sleep→listen and listen-exit
//!   transitions, so listeners receive whole transmissions;
//! * transmissions are back-to-back unit packets continued with
//!   probability `1 − λ_xl` (the equivalence noted in Section V-B);
//! * each node adapts its Lagrange multiplier from the drift of its
//!   energy ledger, eq. (17), with a constant power input at its budget
//!   rate (Section VII-A);
//! * non-clique topologies allow overlapping transmissions; packets
//!   that overlap at a receiver are lost and "none of the transmissions
//!   will be counted as throughput" (Section VII-E);
//! * optional realism knobs used by the testbed emulation
//!   (`econcast-hw`): a post-packet ping interval, noisy listener
//!   estimates, per-node sleep-clock drift, and a constant awake-power
//!   overhead.
//!
//! Time unit: one data-packet transmission (1 ms in the paper's
//! simulations). Throughput is therefore directly comparable to the
//! oracle values of `econcast-oracle` (groupput ≤ N−1, anyput ≤ 1).

pub mod config;
pub mod engine;
pub mod events;
pub mod metrics;
pub mod rng;

pub use config::{EstimatorKind, SimConfig};
pub use engine::Simulator;
pub use metrics::{LatencySummary, NodeStats, SimReport};
