//! Neighbor discovery: the groupput use case from the paper's
//! introduction.
//!
//! Object-tracking tags want every node to learn of every other node.
//! Each data packet carries the sender's id and its reception report
//! (exactly the testbed's packet contents, Section VIII-D). Here we run
//! EconCast-C in groupput mode with the delivery log enabled and
//! measure the *discovery matrix*: when each node first heard each
//! other node, plus the reception-report frames an observer would
//! collect.
//!
//! ```text
//! cargo run --release --example neighbor_discovery
//! ```

use econcast::core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast::proto::{DataFrame, Frame, ReceptionReport};
use econcast::sim::{SimConfig, Simulator};
use econcast::statespace::HomogeneousP4;

fn main() {
    let n = 6;
    let sigma = 0.5;
    let params = NodeParams::from_microwatts(10.0, 500.0, 500.0);

    let p4 = HomogeneousP4::new(n, params, sigma, ThroughputMode::Groupput).solve();
    let mut cfg = SimConfig::ideal_clique(
        n,
        params,
        ProtocolConfig::capture_groupput(sigma),
        1_500_000.0,
        7,
    );
    cfg.eta0 = p4.eta;
    cfg.warmup = 0.0; // discovery starts from a cold channel
    cfg.record_deliveries = true;
    let report = Simulator::new(cfg).expect("valid config").run();

    // First-hearing matrix from the delivery log.
    let mut first_heard = vec![vec![f64::INFINITY; n]; n];
    let mut counts = vec![vec![0u32; n]; n];
    for d in &report.deliveries {
        for rx in d.receiver_ids() {
            if first_heard[rx][d.source].is_infinite() {
                first_heard[rx][d.source] = d.time;
            }
            counts[rx][d.source] += 1;
        }
    }

    println!("first-discovery times (packet-times ≈ ms); rows = listener, cols = speaker");
    print!("      ");
    for j in 0..n {
        print!("  node{j:<7}");
    }
    println!();
    for (i, row) in first_heard.iter().enumerate() {
        print!("node{i:<2}");
        for (j, &t) in row.iter().enumerate() {
            if i == j {
                print!("  {:>10}", "—");
            } else if t.is_finite() {
                print!("  {t:>10.0}");
            } else {
                print!("  {:>10}", "never");
            }
        }
        println!();
    }

    let discovered: usize = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j && first_heard[i][j].is_finite())
        .count();
    println!(
        "\ndiscovered {discovered}/{} directed pairs in {:.0} packet-times",
        n * (n - 1),
        report.elapsed
    );

    // The reception report node 0 would broadcast next — encoded with
    // the actual wire format the testbed uses.
    let frame = Frame::Data(DataFrame {
        source: 0,
        seq: report.nodes[0].packets_sent as u32,
        report: (1..n)
            .map(|j| ReceptionReport {
                peer: j as u16,
                count: counts[0][j],
            })
            .collect(),
    });
    let bytes = frame.encode();
    println!(
        "node0's next reception-report frame: {} bytes on the wire, {:.2} ms at 250 kbps",
        bytes.len(),
        1e3 * frame.airtime_s(250_000.0)
    );
}
