//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset used by `econcast-proto`: [`BytesMut`] as a
//! growable byte buffer with cheap front-consumption, [`Bytes`] as a
//! frozen buffer, and the [`Buf`] / [`BufMut`] traits with big-endian
//! integer accessors (upstream's defaults).

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    #[inline]
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer that also supports consuming from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: everything before it has been consumed. Compacted
    /// lazily so `advance`/`split_to` stay amortized O(1).
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Unconsumed length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no unconsumed bytes remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes.
    #[inline]
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Drops every buffered byte but keeps the allocation — the reuse
    /// primitive of scatter-buffer encoders.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    /// Reclaims consumed front space when it dominates the allocation.
    #[inline]
    fn compact(&mut self) {
        if self.head > 64 && self.head * 2 >= self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }

    /// Splits off and returns the first `n` unconsumed bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes are buffered.
    #[inline]
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of bounds");
        let out = BytesMut {
            data: self.data[self.head..self.head + n].to_vec(),
            head: 0,
        };
        self.head += n;
        self.compact();
        out
    }

    /// Freezes into an immutable [`Bytes`].
    #[inline]
    pub fn freeze(mut self) -> Bytes {
        self.data.drain(..self.head);
        Bytes { data: self.data }
    }

    /// Copies the unconsumed bytes into a `Vec`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.head..].to_vec()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Sequential big-endian reads from a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads the next byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u16`.
    #[inline]
    fn get_u16(&mut self) -> u16 {
        let hi = self.get_u8() as u16;
        let lo = self.get_u8() as u16;
        (hi << 8) | lo
    }

    /// Reads a big-endian `u32`.
    #[inline]
    fn get_u32(&mut self) -> u32 {
        let hi = self.get_u16() as u32;
        let lo = self.get_u16() as u32;
        (hi << 16) | lo
    }

    /// Reads a big-endian `u64`.
    #[inline]
    fn get_u64(&mut self) -> u64 {
        let hi = self.get_u32() as u64;
        let lo = self.get_u32() as u64;
        (hi << 32) | lo
    }

    /// Reads a big-endian IEEE-754 `f64`.
    #[inline]
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        *self = &self[1..];
        b
    }

    // Width-sized overrides: one bounds check and one unaligned load per
    // field instead of the default's chain of per-byte reads. The policy
    // data plane decodes hundreds of kilobytes of f64s per pipelined
    // batch, and the byte-at-a-time defaults were the single largest
    // cost on the wire path.
    #[inline]
    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        let v = u16::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    #[inline]
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }

    #[inline]
    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let v = u64::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        v
    }
}

impl Buf for BytesMut {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.head += n;
        self.compact();
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.advance(1);
        b
    }

    #[inline]
    fn get_u16(&mut self) -> u16 {
        let mut cur: &[u8] = self;
        let v = cur.get_u16();
        self.advance(2);
        v
    }

    #[inline]
    fn get_u32(&mut self) -> u32 {
        let mut cur: &[u8] = self;
        let v = cur.get_u32();
        self.advance(4);
        v
    }

    #[inline]
    fn get_u64(&mut self) -> u64 {
        let mut cur: &[u8] = self;
        let v = cur.get_u64();
        self.advance(8);
        v
    }
}

/// Sequential big-endian writes into a buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a slice.
    fn put_slice(&mut self, v: &[u8]);

    /// Appends a big-endian `u16`.
    #[inline]
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    #[inline]
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    #[inline]
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    #[inline]
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    #[inline]
    fn put_slice(&mut self, v: &[u8]) {
        self.data.extend_from_slice(v);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        assert_eq!(&b[..], &[0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF]);
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16(), 0x1234);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn u64_and_f64_roundtrip_big_endian() {
        let mut b = BytesMut::new();
        b.put_u64(0x0102_0304_0506_0708);
        b.put_f64(-1234.5678e-9);
        b.put_f64(f64::INFINITY);
        assert_eq!(&b[..8], &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cur.get_f64().to_bits(), (-1234.5678e-9f64).to_bits());
        assert_eq!(cur.get_f64(), f64::INFINITY);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_and_split_to() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4, 5]);
        let front = b.split_to(2);
        assert_eq!(&front[..], &[3, 4]);
        assert_eq!(&b[..], &[5]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn freeze_drops_consumed_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[9, 8, 7]);
        b.advance(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[8, 7]);
    }

    #[test]
    fn index_mut_through_deref() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[0, 0, 0]);
        b[1] ^= 0xFF;
        assert_eq!(&b[..], &[0, 0xFF, 0]);
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&vec![7u8; 1000]);
        for _ in 0..990 {
            let _ = b.get_u8();
        }
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&x| x == 7));
    }
}
