//! The Birthday protocol (reference 18 of the paper): slotted random transmit/listen/sleep.
//!
//! Model (exact, standard birthday-protocol analysis): time is slotted
//! with slot = one packet. In every slot each node independently
//! transmits with probability `p_x`, listens with probability `p_l`,
//! and sleeps otherwise (`p_x + p_l ≤ 1`). A slot delivers a packet
//! from node `i` to node `j` iff `i` is the *only* transmitter and `j`
//! listens. Expected groupput (receiver-packets per slot):
//!
//! ```text
//! T_g(p_x, p_l) = N (N−1) · p_x · p_l · (1 − p_x)^{N−2}
//! ```
//!
//! (node `i` transmits and all other `N−1` nodes refrain:
//! `p_x(1−p_x)^{N−1}`; each refrainer listens with conditional
//! probability `p_l/(1−p_x)`). Anyput replaces the expected receiver
//! count with the probability of at least one listener.
//!
//! The power budget constrains `p_x X + p_l L ≤ ρ`; the optimizer
//! searches the binding budget line (throughput is increasing in both
//! probabilities, so the budget always binds when it is the tight
//! constraint).

use econcast_core::NodeParams;

/// Birthday-protocol throughput model for a homogeneous clique.
#[derive(Debug, Clone, Copy)]
pub struct BirthdayProtocol {
    /// Number of nodes (the protocol requires `N` a priori —
    /// Section VII-C notes this stricter assumption).
    pub n: usize,
    /// Per-node power parameters.
    pub params: NodeParams,
}

impl BirthdayProtocol {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics when `n < 2`.
    pub fn new(n: usize, params: NodeParams) -> Self {
        assert!(n >= 2, "birthday protocol needs at least 2 nodes");
        BirthdayProtocol { n, params }
    }

    /// Groupput at explicit `(p_x, p_l)` (no feasibility check).
    pub fn groupput_at(&self, p_x: f64, p_l: f64) -> f64 {
        let nf = self.n as f64;
        nf * (nf - 1.0) * p_x * p_l * (1.0 - p_x).powi(self.n as i32 - 2)
    }

    /// Anyput at explicit `(p_x, p_l)`: one unique transmitter and at
    /// least one of the `N−1` others listening.
    pub fn anyput_at(&self, p_x: f64, p_l: f64) -> f64 {
        let nf = self.n as f64;
        let p_listen_given_idle = (p_l / (1.0 - p_x)).min(1.0);
        nf * p_x
            * (1.0 - p_x).powi(self.n as i32 - 1)
            * (1.0 - (1.0 - p_listen_given_idle).powi(self.n as i32 - 1))
    }

    /// The largest transmit probability the budget alone allows.
    fn p_x_max(&self) -> f64 {
        (self.params.budget_w / self.params.transmit_w).min(1.0)
    }

    /// On the binding budget line, the listen probability implied by a
    /// transmit probability (clamped so `p_x + p_l ≤ 1`).
    fn p_l_of(&self, p_x: f64) -> f64 {
        let p = &self.params;
        (((p.budget_w - p_x * p.transmit_w) / p.listen_w).max(0.0)).min(1.0 - p_x)
    }

    /// Maximizes groupput over the budget line by golden-section search
    /// (the objective is smooth and unimodal in `p_x` on the line).
    /// Returns `(T_g, p_x, p_l)`.
    pub fn optimal_groupput(&self) -> (f64, f64, f64) {
        let f = |p_x: f64| self.groupput_at(p_x, self.p_l_of(p_x));
        let p_x = golden_section_max(f, 0.0, self.p_x_max());
        let p_l = self.p_l_of(p_x);
        (self.groupput_at(p_x, p_l), p_x, p_l)
    }

    /// Maximizes anyput analogously. Returns `(T_a, p_x, p_l)`.
    pub fn optimal_anyput(&self) -> (f64, f64, f64) {
        let f = |p_x: f64| self.anyput_at(p_x, self.p_l_of(p_x));
        let p_x = golden_section_max(f, 0.0, self.p_x_max());
        let p_l = self.p_l_of(p_x);
        (self.anyput_at(p_x, p_l), p_x, p_l)
    }
}

/// Golden-section search for the maximum of a unimodal function on
/// `[lo, hi]`.
fn golden_section_max<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..200 {
        if fc > fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
        if (hi - lo).abs() < 1e-14 {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> NodeParams {
        NodeParams::from_microwatts(10.0, 500.0, 500.0)
    }

    #[test]
    fn groupput_formula_sanity() {
        let b = BirthdayProtocol::new(2, params());
        // Two nodes: T = 2·1·p_x·p_l·(1-p_x)^0 = 2 p_x p_l.
        assert!((b.groupput_at(0.1, 0.2) - 2.0 * 0.1 * 0.2).abs() < 1e-12);
        // Degenerate probabilities give zero.
        assert_eq!(b.groupput_at(0.0, 0.5), 0.0);
        assert_eq!(b.groupput_at(0.5, 0.0), 0.0);
    }

    #[test]
    fn optimum_respects_budget() {
        let b = BirthdayProtocol::new(5, params());
        let (t, p_x, p_l) = b.optimal_groupput();
        assert!(t > 0.0);
        let consumed = p_x * params().transmit_w + p_l * params().listen_w;
        assert!(
            consumed <= params().budget_w + 1e-12,
            "consumed {consumed} over budget"
        );
        // For a severely constrained network the budget binds.
        assert!((consumed - params().budget_w).abs() < 1e-9);
        assert!(p_x + p_l <= 1.0);
    }

    #[test]
    fn optimum_beats_naive_splits() {
        let b = BirthdayProtocol::new(5, params());
        let (t_opt, _, _) = b.optimal_groupput();
        for frac in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let p_x = frac * b.p_x_max();
            let t = b.groupput_at(p_x, b.p_l_of(p_x));
            assert!(
                t <= t_opt + 1e-12,
                "split {frac}: {t} beats optimum {t_opt}"
            );
        }
    }

    #[test]
    fn anyput_bounded_by_one_and_below_groupput_here() {
        let b = BirthdayProtocol::new(5, params());
        let (ta, _, _) = b.optimal_anyput();
        assert!(ta > 0.0 && ta <= 1.0);
    }

    #[test]
    fn birthday_far_below_oracle() {
        // The headline comparison: under σ-free oracle scheduling the
        // clique achieves T*_g = N(N−1)ρ/(X+(N−1)L); Birthday's random
        // slotted rendezvous is far below it (Fig. 3 shows ~100× gaps).
        let p = params();
        let b = BirthdayProtocol::new(5, p);
        let (t, _, _) = b.optimal_groupput();
        let beta = p.budget_w / (p.transmit_w + 4.0 * p.listen_w);
        let t_star = 20.0 * beta;
        assert!(t < 0.05 * t_star, "birthday {t} is not ≪ oracle {t_star}");
    }

    proptest! {
        /// The optimizer never returns an infeasible or dominated point.
        #[test]
        fn prop_optimizer_feasible_and_dominant(
            n in 2usize..12,
            budget_uw in 1.0f64..100.0,
            x_uw in 200.0f64..900.0,
        ) {
            let p = NodeParams::from_microwatts(budget_uw, 1000.0 - x_uw, x_uw);
            let b = BirthdayProtocol::new(n, p);
            let (t, p_x, p_l) = b.optimal_groupput();
            prop_assert!(p_x >= 0.0 && p_l >= 0.0 && p_x + p_l <= 1.0 + 1e-12);
            prop_assert!(p_x * p.transmit_w + p_l * p.listen_w <= p.budget_w + 1e-12);
            // Dominates a mid-line candidate.
            let mid = 0.5 * b.p_x_max();
            prop_assert!(t + 1e-12 >= b.groupput_at(mid, b.p_l_of(mid)));
        }
    }
}
