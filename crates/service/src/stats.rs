//! Per-tier serving counters.
//!
//! ## Counters vs gauges
//!
//! The stats block is *almost* all counters — monotone totals since
//! construction, merged across shards and backends by summing. Two
//! fields are gauges (instantaneous levels) riding the same wire
//! block for history's sake, and each carries its merge rule in
//! [`STAT_KINDS`]:
//!
//! - `lru_len` is a [`StatKind::GaugeSum`]: shards hold disjoint key
//!   ranges, so total residency is the sum of the levels.
//! - `queue_depth_peak` is a [`StatKind::GaugeMax`]: shards share one
//!   admission queue, so the deployment peak is the max.
//!
//! [`merge`](ServiceStats::merge) is driven by the table, not by
//! hand-maintained per-field code — a new field merges wrong only if
//! its kind is declared wrong. The richer v7 metrics plane
//! (`econcast-metrics`) makes the same distinction self-describing on
//! the wire by tagging every gauge with its merge kind.

use econcast_proto::service::{WireServiceStats, STATS_COUNTERS};

/// Merge semantics of one [`ServiceStats`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatKind {
    /// Monotone total; aggregates by sum.
    Counter,
    /// Instantaneous level over disjoint domains; aggregates by sum.
    GaugeSum,
    /// Instantaneous level over a shared domain; aggregates by max.
    GaugeMax,
}

/// Merge kind of every stats field, in wire order (the order of
/// [`WireServiceStats::to_array`]).
pub const STAT_KINDS: [StatKind; STATS_COUNTERS] = {
    let mut kinds = [StatKind::Counter; STATS_COUNTERS];
    kinds[12] = StatKind::GaugeSum; // lru_len
    kinds[23] = StatKind::GaugeMax; // queue_depth_peak
    kinds
};

/// A snapshot of one service's (or one shard's) counters since
/// construction. Obtained from `PolicyService::stats` or per shard
/// from `ShardRouter::shard_stats`; plain data, cheap to copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests received (including failed ones).
    pub requests: u64,
    /// Batches served.
    pub batches: u64,
    /// Requests answered from the exact-match LRU tier.
    pub exact_hits: u64,
    /// Requests answered by grid interpolation.
    pub grid_hits: u64,
    /// Requests answered by the homogeneous closed-form tier.
    pub closed_form_hits: u64,
    /// Requests that ran the exact (P4) dual-descent solver.
    pub solver_solves: u64,
    /// Requests answered by referencing an identical instance solved
    /// earlier in the *same* batch (no extra solve).
    pub batch_dedup_hits: u64,
    /// Requests rejected (validation or size).
    pub errors: u64,
    /// Grid families built lazily so far.
    pub grid_builds: u64,
    /// Grid families built ahead of demand by the prewarmer.
    pub grid_prewarms: u64,
    /// Entries inserted into the LRU.
    pub lru_inserts: u64,
    /// Entries evicted from the LRU.
    pub lru_evictions: u64,
    /// Entries currently resident in the LRU.
    pub lru_len: u64,
    /// Exact-tier hits whose entry was produced by the homogeneous
    /// closed form — with [`exact_hits_factorized`](Self::exact_hits_factorized)
    /// this attributes the two kernels that matter at large N, so
    /// cache behaviour there (where the factorized solver feeds the
    /// LRU) is observable separately from the closed-form traffic.
    /// Hits on Gray-code- or grid-produced entries land in neither
    /// counter (the sum is ≤ `exact_hits`, not a partition of it);
    /// per-response attribution for *every* kernel rides the
    /// `kernel` tag on `PolicyResponse`.
    pub exact_hits_closed_form: u64,
    /// Exact-tier hits whose entry was produced by the factorized
    /// large-N solver.
    pub exact_hits_factorized: u64,
    /// LRU entries evicted to satisfy the cross-tier cache **byte
    /// budget** (`ServiceConfig::max_cache_bytes`), as opposed to
    /// [`lru_evictions`](Self::lru_evictions) which counts evictions
    /// for any reason (entry-count capacity included). Grid builds
    /// charge the shared budget too, so a burst of grid residency
    /// shows up here as exact-tier pressure.
    pub byte_evictions: u64,
    /// Dead backends automatically respawned and retargeted by the
    /// cluster's supervisor policy loop. Always zero for a plain
    /// service — the cluster front overlays the four self-healing
    /// counters on the aggregate it reports, so they ride the same
    /// wire block as the per-tier counters (wire v4).
    pub auto_respawns: u64,
    /// Backend slots quarantined onto the local fallback solver after
    /// exhausting their respawn budget (cluster overlay, wire v4).
    pub quarantines: u64,
    /// Warm mix handoffs shipped during live reshards (cluster
    /// overlay, wire v4).
    pub reshard_handoffs: u64,
    /// Faults injected by a scripted fault plan — nonzero only under
    /// the chaos harness (cluster overlay, wire v4).
    pub injected_faults: u64,
    /// Requests rejected with `Overloaded` past the shed ladder
    /// (admission overlay, wire v6).
    pub shed_rejects: u64,
    /// Requests served from the interpolation-grid tier at a relaxed —
    /// still certificate-reported — tolerance because the admission
    /// queue was past its degrade threshold (admission overlay, v6).
    pub degraded_serves: u64,
    /// Requests whose `deadline_us` budget expired before (or during)
    /// service; each also counts in
    /// [`shed_rejects`](Self::shed_rejects) — the caller saw an
    /// `Overloaded`, never a late result (admission overlay, v6).
    pub deadline_expired: u64,
    /// High-water mark of the admission queue depth — a gauge, not a
    /// counter: [`merge`](Self::merge) takes the max, and the CI
    /// overload-smoke job asserts it stays within `queue_capacity`
    /// (bounded queue memory). Wire v6.
    pub queue_depth_peak: u64,
}

impl ServiceStats {
    /// Requests served without touching any solver (exact + grid +
    /// in-batch dedup).
    pub fn solver_free(&self) -> u64 {
        self.exact_hits + self.grid_hits + self.batch_dedup_hits
    }

    /// Total requests answered successfully.
    pub fn served(&self) -> u64 {
        self.exact_hits
            + self.grid_hits
            + self.closed_form_hits
            + self.solver_solves
            + self.batch_dedup_hits
    }

    /// Accumulates another snapshot into this one — how per-shard
    /// snapshots aggregate into a deployment total. Each field merges
    /// by its declared [`STAT_KINDS`] entry: counters and
    /// disjoint-domain gauges (`lru_len`) sum, shared-domain gauges
    /// (`queue_depth_peak`) take the max.
    pub fn merge(&mut self, other: &ServiceStats) {
        let mut a = self.to_wire().to_array();
        let b = other.to_wire().to_array();
        for (i, (x, y)) in a.iter_mut().zip(b).enumerate() {
            match STAT_KINDS[i] {
                StatKind::Counter | StatKind::GaugeSum => *x += y,
                StatKind::GaugeMax => *x = (*x).max(y),
            }
        }
        *self = ServiceStats::from_wire(&WireServiceStats::from_array(a));
    }

    /// The wire form of this snapshot (for `StatsResponse` messages).
    pub fn to_wire(&self) -> WireServiceStats {
        WireServiceStats {
            requests: self.requests,
            batches: self.batches,
            exact_hits: self.exact_hits,
            grid_hits: self.grid_hits,
            closed_form_hits: self.closed_form_hits,
            solver_solves: self.solver_solves,
            batch_dedup_hits: self.batch_dedup_hits,
            errors: self.errors,
            grid_builds: self.grid_builds,
            grid_prewarms: self.grid_prewarms,
            lru_inserts: self.lru_inserts,
            lru_evictions: self.lru_evictions,
            lru_len: self.lru_len,
            exact_hits_closed_form: self.exact_hits_closed_form,
            exact_hits_factorized: self.exact_hits_factorized,
            byte_evictions: self.byte_evictions,
            auto_respawns: self.auto_respawns,
            quarantines: self.quarantines,
            reshard_handoffs: self.reshard_handoffs,
            injected_faults: self.injected_faults,
            shed_rejects: self.shed_rejects,
            degraded_serves: self.degraded_serves,
            deadline_expired: self.deadline_expired,
            queue_depth_peak: self.queue_depth_peak,
        }
    }

    /// Rebuilds a snapshot from its wire form.
    pub fn from_wire(w: &WireServiceStats) -> Self {
        ServiceStats {
            requests: w.requests,
            batches: w.batches,
            exact_hits: w.exact_hits,
            grid_hits: w.grid_hits,
            closed_form_hits: w.closed_form_hits,
            solver_solves: w.solver_solves,
            batch_dedup_hits: w.batch_dedup_hits,
            errors: w.errors,
            grid_builds: w.grid_builds,
            grid_prewarms: w.grid_prewarms,
            lru_inserts: w.lru_inserts,
            lru_evictions: w.lru_evictions,
            lru_len: w.lru_len,
            exact_hits_closed_form: w.exact_hits_closed_form,
            exact_hits_factorized: w.exact_hits_factorized,
            byte_evictions: w.byte_evictions,
            auto_respawns: w.auto_respawns,
            quarantines: w.quarantines,
            reshard_handoffs: w.reshard_handoffs,
            injected_faults: w.injected_faults,
            shed_rejects: w.shed_rejects,
            degraded_serves: w.degraded_serves,
            deadline_expired: w.deadline_expired,
            queue_depth_peak: w.queue_depth_peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting() -> ServiceStats {
        let w = WireServiceStats::from_array(std::array::from_fn(|i| i as u64 + 1));
        ServiceStats::from_wire(&w)
    }

    #[test]
    fn wire_roundtrip_is_lossless() {
        let s = counting();
        assert_eq!(ServiceStats::from_wire(&s.to_wire()), s);
        // Every field is distinct in the fixture, so a swapped mapping
        // in either direction would break the equality above.
        assert_eq!(s.requests, 1);
        assert_eq!(s.grid_prewarms, 10);
        assert_eq!(s.lru_len, 13);
        assert_eq!(s.exact_hits_closed_form, 14);
        assert_eq!(s.exact_hits_factorized, 15);
        assert_eq!(s.byte_evictions, 16);
        assert_eq!(s.auto_respawns, 17);
        assert_eq!(s.quarantines, 18);
        assert_eq!(s.reshard_handoffs, 19);
        assert_eq!(s.injected_faults, 20);
        assert_eq!(s.shed_rejects, 21);
        assert_eq!(s.degraded_serves, 22);
        assert_eq!(s.deadline_expired, 23);
        assert_eq!(s.queue_depth_peak, 24);
    }

    #[test]
    fn merge_sums_every_counter_except_the_peak_gauge() {
        let s = counting();
        let mut total = ServiceStats::default();
        total.merge(&s);
        total.merge(&s);
        let mut expect = s.to_wire().to_array().map(|c| 2 * c);
        // queue_depth_peak is a gauge: merging identical snapshots
        // keeps the max, not the sum.
        *expect.last_mut().unwrap() = s.queue_depth_peak;
        assert_eq!(total.to_wire().to_array(), expect);
        assert_eq!(total.served(), 2 * s.served());
    }

    #[test]
    fn stat_kinds_flag_exactly_the_two_gauges() {
        // lru_len (slot 12) sums across disjoint shards; the queue
        // peak (slot 23) maxes across a shared queue; everything else
        // is a plain counter. A gauge smuggled into the counter list
        // without a kind declaration fails here.
        for (i, kind) in STAT_KINDS.iter().enumerate() {
            let expect = match i {
                12 => StatKind::GaugeSum,
                23 => StatKind::GaugeMax,
                _ => StatKind::Counter,
            };
            assert_eq!(*kind, expect, "slot {i}");
        }
        // And the table drives merge: the two gauges behave
        // differently from each other and from the counters.
        let mut a = ServiceStats {
            lru_len: 5,
            queue_depth_peak: 7,
            requests: 1,
            ..ServiceStats::default()
        };
        let b = ServiceStats {
            lru_len: 3,
            queue_depth_peak: 4,
            requests: 1,
            ..ServiceStats::default()
        };
        a.merge(&b);
        assert_eq!(a.lru_len, 8);
        assert_eq!(a.queue_depth_peak, 7);
        assert_eq!(a.requests, 2);
    }
}
