//! The Fig. 2 heterogeneous-network sampler.
//!
//! For a heterogeneity level `h` (the paper sweeps
//! `h ∈ {10, 50, 100, 150, 200, 250}`):
//!
//! * each node's `L_i` and `X_i` are drawn independently and uniformly
//!   from `[510 − h, 490 + h]` µW (mean 500 µW for every `h`);
//! * each node's budget is `ρ_i = e^{h'}` µW with
//!   `h' ~ U[−log(h/100), log h]`, i.e. log-uniform between `100/h` µW
//!   and `h` µW (median 10 µW).
//!
//! `h = 10` degenerates to the homogeneous network (`L_i = X_i =
//! 500 µW`, `ρ_i = 10 µW`).

use econcast_core::NodeParams;
use rand::Rng;

/// The heterogeneity levels swept in Fig. 2.
pub const PAPER_H_VALUES: [f64; 6] = [10.0, 50.0, 100.0, 150.0, 200.0, 250.0];

/// Sampler of heterogeneous networks at a fixed level `h`.
#[derive(Debug, Clone, Copy)]
pub struct HeterogeneitySampler {
    /// Heterogeneity level `h ≥ 10`.
    pub h: f64,
}

impl HeterogeneitySampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics when `h < 10` (below the paper's homogeneous floor the
    /// power interval `[510−h, 490+h]` would be empty).
    pub fn new(h: f64) -> Self {
        assert!(
            h >= 10.0 && h.is_finite(),
            "heterogeneity level must be ≥ 10, got {h}"
        );
        HeterogeneitySampler { h }
    }

    /// Draws one node's parameters.
    pub fn sample_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeParams {
        let h = self.h;
        let lo = 510.0 - h;
        let hi = 490.0 + h;
        let listen_uw = lo + (hi - lo) * rng.gen::<f64>();
        let transmit_uw = lo + (hi - lo) * rng.gen::<f64>();
        // h' ~ U[−log(h/100), log h]; ρ = e^{h'} µW.
        let lo_log = -(h / 100.0).ln();
        let hi_log = h.ln();
        let h_prime = lo_log + (hi_log - lo_log) * rng.gen::<f64>();
        let budget_uw = h_prime.exp();
        NodeParams::from_microwatts(budget_uw, listen_uw, transmit_uw)
    }

    /// Draws a network of `n` nodes.
    pub fn sample_network<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<NodeParams> {
        (0..n).map(|_| self.sample_node(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn h10_is_homogeneous() {
        let s = HeterogeneitySampler::new(10.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let p = s.sample_node(&mut rng);
            // L, X pinned at 500 µW; ρ log-uniform on [10, 10] = 10 µW.
            assert!((p.listen_w - 500e-6).abs() < 1e-9);
            assert!((p.transmit_w - 500e-6).abs() < 1e-9);
            assert!((p.budget_w - 10e-6).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_respect_ranges() {
        for &h in &PAPER_H_VALUES[1..] {
            let s = HeterogeneitySampler::new(h);
            let mut rng = StdRng::seed_from_u64(2);
            for _ in 0..200 {
                let p = s.sample_node(&mut rng);
                let (lo, hi) = ((510.0 - h) * 1e-6, (490.0 + h) * 1e-6);
                assert!((lo..=hi).contains(&p.listen_w), "h={h} L={}", p.listen_w);
                assert!((lo..=hi).contains(&p.transmit_w));
                let (blo, bhi) = (100.0 / h * 1e-6, h * 1e-6);
                assert!(
                    (blo * 0.999..=bhi * 1.001).contains(&p.budget_w),
                    "h={h} ρ={}",
                    p.budget_w
                );
            }
        }
    }

    #[test]
    fn power_means_are_centered_at_500uw() {
        let s = HeterogeneitySampler::new(250.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean_l: f64 = (0..n)
            .map(|_| s.sample_node(&mut rng).listen_w)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_l - 500e-6).abs() < 5e-6,
            "mean L = {mean_l}, expected ≈ 500 µW"
        );
    }

    #[test]
    fn budget_median_near_10uw() {
        let s = HeterogeneitySampler::new(100.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut budgets: Vec<f64> = (0..10_001)
            .map(|_| s.sample_node(&mut rng).budget_w)
            .collect();
        budgets.sort_by(|a, b| a.partial_cmp(b).expect("budgets are positive"));
        let median = budgets[budgets.len() / 2];
        // Log-uniform on [1, 100] µW has median 10 µW.
        assert!(
            (median - 10e-6).abs() < 2e-6,
            "median budget {median}, expected ≈ 10 µW"
        );
    }

    #[test]
    fn larger_h_spreads_budgets() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut spread = |h: f64| {
            let s = HeterogeneitySampler::new(h);
            let xs: Vec<f64> = (0..2000)
                .map(|_| s.sample_node(&mut rng).budget_w.ln())
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(spread(250.0) > spread(50.0));
    }

    #[test]
    #[should_panic(expected = "must be ≥ 10")]
    fn too_small_h_rejected() {
        HeterogeneitySampler::new(5.0);
    }
}
