//! Wire messages for the policy-serving subsystem (`econcast-service`).
//!
//! The policy server accepts batches of *policy requests* — "here are
//! my N nodes' power budgets, tell each of them how much to listen and
//! transmit" — and answers with per-node policies plus the
//! achievability-gap certificate of `econcast-oracle::gap`. These
//! messages ride the same CRC-16/CCITT integrity layer as the radio
//! frames in [`crate::frame`], but form a separate, *versioned* family
//! (type octets `0x10..`) so the two wire surfaces can evolve
//! independently.
//!
//! Wire layout (big-endian, CRC-16/CCITT-FALSE over everything before
//! the CRC; all floats are IEEE-754 bit patterns, so round-trips are
//! exact):
//!
//! ```text
//! Request:  [0x10][ver][corr u32][id u32][deadline_us u32 (v6+)]
//!           [obj u8][sigma f64][tol f64]
//!           [listen f64][transmit f64][n u16]{ [rho f64] }×n [crc u16]
//! Response: [0x11][ver][corr u32][id u32][tier u8][kernel u8][converged u8]
//!           [throughput f64][t_sigma f64][oracle f64][dual_upper f64]
//!           [n u16]{ [listen f64][transmit f64] }×n [crc u16]
//! Error:    [0x12][ver][corr u32][id u32][code u8][crc u16]
//! Hello:    [0x13][ver][id u32][max_batch u16][crc u16]
//! Welcome:  [0x14][ver][id u32][shards u16][max_batch u16][crc u16]
//! StatsReq: [0x15][ver][id u32][shard u16][crc u16]
//! Stats:    [0x16][ver][id u32][shard u16]{ [counter u64] }×k [crc u16]
//!           (k = 20 through v5, 24 at v6)
//! Ping:     [0x17][ver][id u32][crc u16]
//! Pong:     [0x18][ver][id u32][crc u16]
//! MixSeed:  [0x19][ver][id u32][count u16]
//!           { [n u16][listen f64][transmit f64][sigma f64][mode u8]
//!             [hits u64] }×count [crc u16]
//! MixAck:   [0x1A][ver][id u32][absorbed u16][grids_built u16][crc u16]
//! Overload: [0x1B][ver][corr u32][id u32][retry_after_us u32][crc u16]
//!           (v6+ only)
//! MetricsReq: [0x1C][ver][id u32][crc u16]  (v7+ only)
//! Metrics:  [0x1D][ver][id u32]
//!           [nc u16]{ [counter u64] }×nc
//!           [ng u16]{ [kind u8][value u64] }×ng
//!           [nh u16]{ [nb u16]{ [bucket u16][count u64] }×nb }×nh
//!           [crc u16]  (v7+ only)
//! ```
//!
//! Version 2 added the response's `kernel` octet (which solve kernel
//! produced the policy — closed form, Gray-code enumeration,
//! factorized large-N, or grid interpolation) and the two
//! kernel-resolved exact-hit counters in the stats block, so
//! cache-behaviour regressions at large N are observable per kernel.
//! Version 3 added the `Ping`/`Pong` health pair (the liveness probe
//! of the cluster layer's remote-shard dialers) and the
//! `byte_evictions` counter in the stats block (the cross-tier cache
//! byte budget's eviction accounting).
//! Version 4 added the `MixSeed`/`MixAck` warm-handoff pair — a
//! snapshot of one shard's observed homogeneous request mix, shipped
//! to the shard inheriting its key range during a reshard so grid
//! prewarming starts from the departing owner's heat instead of cold —
//! and the four cluster self-healing counters in the stats block
//! (`auto_respawns`, `quarantines`, `reshard_handoffs`,
//! `injected_faults`).
//! Version 5 added the `corr u32` correlation-id field to the three
//! data-plane messages (`Request`/`Response`/`Error`, shown above) so
//! several batches can be in flight on one connection and replies can
//! complete out of order — the client stamps every request of a
//! submitted batch with one fresh `corr`, the server echoes it, and
//! the client demultiplexes replies to the right in-flight batch by
//! `corr` alone. All other message types are byte-identical to v4
//! except for the version octet. Decoders accept both v4 and v5
//! ([`MIN_WIRE_VERSION`]); a v4 frame decodes with `corr = 0`, and
//! encoders can stamp either version
//! ([`ServiceMessage::encode_into_versioned`]) so a v5 binary can
//! interoperate with a v4 peer in both directions.
//! Version 6 is the overload-control revision: requests gained the
//! optional `deadline_us` budget (0 = none — the caller's end-to-end
//! latency tolerance; a server drops work it cannot finish in time
//! and answers `Overloaded` instead of returning a late result), the
//! `Overloaded` frame (`0x1B`, an explicit admission rejection
//! carrying a `retry_after_us` pacing hint) joined the data plane,
//! and four overload counters (`shed_rejects`, `degraded_serves`,
//! `deadline_expired`, `queue_depth_peak`) appended to the stats
//! block. All three additions are negotiated: frames stamped v4/v5
//! keep their exact prior layouts (no deadline field, 20 stats
//! counters), a pre-v6 frame decodes with `deadline_us = 0`, and the
//! `Overloaded` frame is never sent to a pre-v6 peer — servers shed
//! those connections through the degraded-serve ladder instead, so an
//! old client sees only frames it can parse.
//! Version 7 added the always-on metrics plane's scrape pair:
//! `MetricsRequest` (`0x1C`) asks for a point-in-time snapshot of the
//! serving process's metrics registry, answered by `MetricsResponse`
//! (`0x1D`) — counters, merge-kind-tagged gauges, and sparse
//! log-bucket latency histograms, all self-describing so a fan-in
//! needs no out-of-band schema. Like the `Overloaded` frame, the pair
//! is negotiated: neither frame is ever sent to a pre-v7 peer
//! (clients refuse to scrape an old connection, servers only answer
//! frames received), and a `0x1C`/`0x1D` frame stamped pre-v7 is
//! refused as [`DecodeError::UnsupportedVersion`]. Every other
//! message is byte-identical between v6 and v7.
//!
//! `Hello`/`Welcome` form the connection handshake of the TCP policy
//! server: the client announces the largest batch it intends to
//! pipeline, the server answers with its shard count and the batch cap
//! it will honor. `StatsReq` asks for one shard's serving counters
//! (`shard = 0xFFFF` aggregates across all shards) and is answered by
//! `Stats` with the counters of [`WireServiceStats`] in declaration
//! order. `Ping` is answered by `Pong` echoing the id — a pure
//! liveness/round-trip probe that touches no shard state, cheap enough
//! for health checkers to send on a tight cadence.
//!
//! `ver` is [`WIRE_VERSION`] (or any accepted version down to
//! [`MIN_WIRE_VERSION`]); decoders reject versions outside that window
//! with [`DecodeError::UnsupportedVersion`] so old binaries fail
//! loudly instead of misparsing. Budgets are listed in the *caller's* node
//! order and the response's policies come back in that same order —
//! canonicalization for caching is entirely the server's business and
//! never leaks onto the wire.

use crate::crc::crc16_ccitt;
use crate::error::DecodeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current service wire-format version.
pub const WIRE_VERSION: u8 = 7;

/// Oldest wire version this build still decodes (and can encode, via
/// [`ServiceMessage::encode_into_versioned`]). A v4 data-plane frame
/// carries no correlation id; it decodes with `corr = 0`.
pub const MIN_WIRE_VERSION: u8 = 4;

/// Hard cap on per-message node counts so every message fits a u16
/// stream-length prefix (a 4000-node response is 64 042 bytes).
pub const MAX_WIRE_NODES: usize = 4000;

/// Hard cap on families per [`MixSeed`](ServiceMessage::MixSeed)
/// message so it fits the u16 stream-length prefix (1000 families are
/// 35 010 bytes); senders truncate to the hottest families.
pub const MAX_WIRE_FAMILIES: usize = 1000;

const TYPE_REQUEST: u8 = 0x10;
const TYPE_RESPONSE: u8 = 0x11;
const TYPE_ERROR: u8 = 0x12;
const TYPE_HELLO: u8 = 0x13;
const TYPE_WELCOME: u8 = 0x14;
const TYPE_STATS_REQUEST: u8 = 0x15;
const TYPE_STATS_RESPONSE: u8 = 0x16;
const TYPE_PING: u8 = 0x17;
const TYPE_PONG: u8 = 0x18;
const TYPE_MIX_SEED: u8 = 0x19;
const TYPE_MIX_ACK: u8 = 0x1A;
const TYPE_OVERLOADED: u8 = 0x1B;
const TYPE_METRICS_REQUEST: u8 = 0x1C;
const TYPE_METRICS_RESPONSE: u8 = 0x1D;

/// First wire version that carries the overload-control surface: the
/// request `deadline_us` field, the `Overloaded` frame, and the four
/// appended overload stats counters.
pub const OVERLOAD_WIRE_VERSION: u8 = 6;

/// First wire version that carries the metrics-plane scrape pair
/// (`MetricsRequest`/`MetricsResponse`). Neither frame is ever sent
/// to a pre-v7 peer.
pub const METRICS_WIRE_VERSION: u8 = 7;

/// Cap on counters per [`WireMetricsSnapshot`] (frame must fit the
/// u16 stream-length prefix; the registry currently uses 13).
pub const MAX_WIRE_METRICS_COUNTERS: usize = 256;

/// Cap on gauges per [`WireMetricsSnapshot`].
pub const MAX_WIRE_METRICS_GAUGES: usize = 256;

/// Cap on histograms per [`WireMetricsSnapshot`].
pub const MAX_WIRE_METRICS_HISTS: usize = 8;

/// Cap on non-zero buckets per histogram (the shared log-bucket
/// scheme has 496 buckets; 512 leaves headroom without threatening
/// the u16 length prefix).
pub const MAX_WIRE_METRICS_BUCKETS: usize = 512;

/// The `shard` value that requests counters aggregated across every
/// shard instead of one shard's.
pub const STATS_SHARD_AGGREGATE: u16 = 0xFFFF;

/// Which throughput objective the requested policy optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireObjective {
    /// Groupput (Definition 1): count every delivered copy.
    Groupput,
    /// Anyput (Definition 2): count packets delivered to ≥ 1 listener.
    Anyput,
}

impl WireObjective {
    fn to_u8(self) -> u8 {
        match self {
            WireObjective::Groupput => 0,
            WireObjective::Anyput => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(WireObjective::Groupput),
            1 => Ok(WireObjective::Anyput),
            _ => Err(DecodeError::InvalidField("objective")),
        }
    }
}

/// Which cache tier produced a response (also the server's per-tier
/// stats key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedTier {
    /// A fresh exact (P4) dual-descent solve.
    Solver,
    /// Exact-match LRU hit on the canonicalized instance.
    Exact,
    /// Interpolated from the precomputed (N, ρ) grid.
    Grid,
    /// The O(1)-per-group homogeneous closed form (scalar-dual
    /// bisection over the `2N + 1` aggregated state groups).
    ClosedForm,
}

impl ServedTier {
    fn to_u8(self) -> u8 {
        match self {
            ServedTier::Solver => 0,
            ServedTier::Exact => 1,
            ServedTier::Grid => 2,
            ServedTier::ClosedForm => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(ServedTier::Solver),
            1 => Ok(ServedTier::Exact),
            2 => Ok(ServedTier::Grid),
            3 => Ok(ServedTier::ClosedForm),
            _ => Err(DecodeError::InvalidField("tier")),
        }
    }
}

/// Which solve kernel produced the policy backing a response — the
/// debug companion to [`ServedTier`]: the tier says *which cache
/// layer* answered, the kernel says *what computed* the entry that
/// layer holds, so an exact-tier hit at `N = 32` is distinguishable
/// as "a prior factorized solve" rather than blending into the
/// closed-form traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKernel {
    /// The Gray-code streaming enumeration of `W`.
    GrayCode,
    /// The factorized polynomial large-N kernel.
    Factorized,
    /// The homogeneous scalar-dual closed form.
    ClosedForm,
    /// Interpolated from a precomputed `(N, ρ)` grid.
    Grid,
}

impl PolicyKernel {
    fn to_u8(self) -> u8 {
        match self {
            PolicyKernel::GrayCode => 0,
            PolicyKernel::Factorized => 1,
            PolicyKernel::ClosedForm => 2,
            PolicyKernel::Grid => 3,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(PolicyKernel::GrayCode),
            1 => Ok(PolicyKernel::Factorized),
            2 => Ok(PolicyKernel::ClosedForm),
            3 => Ok(PolicyKernel::Grid),
            _ => Err(DecodeError::InvalidField("kernel")),
        }
    }
}

/// Why the server could not answer a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceErrorCode {
    /// A field failed validation (non-positive budget, σ ≤ 0, …).
    BadRequest,
    /// The instance is heterogeneous and too large for exact
    /// enumeration, and no fallback tier covers it.
    TooLarge,
    /// The server's admission ladder rejected the request under
    /// overload (wire v6). Rides the dedicated `0x1B` frame — which
    /// carries the `retry_after_us` pacing hint — never the `0x12`
    /// code octet, so pre-v6 decoders are never shown a code they
    /// don't know.
    Overloaded,
}

impl ServiceErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ServiceErrorCode::BadRequest => 0,
            ServiceErrorCode::TooLarge => 1,
            // Never rides the 0x12 code octet; encode picks the 0x1B
            // frame for it. The value exists only for completeness.
            ServiceErrorCode::Overloaded => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(ServiceErrorCode::BadRequest),
            1 => Ok(ServiceErrorCode::TooLarge),
            _ => Err(DecodeError::InvalidField("error code")),
        }
    }
}

/// A policy request: one instance of "solve (P4) for these budgets".
///
/// All nodes share the radio powers `(listen_w, transmit_w)` — the
/// paper's heterogeneity is in the harvested budgets, not the radio —
/// while `budgets_w[i]` carries each node's `ρ_i` in caller order.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePolicyRequest {
    /// Batch correlation id (wire v5), echoed in the reply. All
    /// requests of one pipelined submit share a `corr`; `0` means
    /// "unknown" (every v4 frame, or a caller that does not pipeline).
    pub corr: u32,
    /// Caller-chosen per-request id, echoed in the response.
    pub id: u32,
    /// Deadline budget in microseconds (wire v6): how long the caller
    /// is willing to wait for this answer, measured from the server's
    /// receipt. `0` means "no deadline" (and is what every pre-v6
    /// frame decodes to). A server that cannot finish inside the
    /// budget answers `Overloaded` instead of a late result.
    pub deadline_us: u32,
    /// Throughput objective.
    pub objective: WireObjective,
    /// Entropy temperature σ.
    pub sigma: f64,
    /// Requested relative accuracy of the returned policy (the cache
    /// tier contract; see the service crate docs).
    pub tolerance: f64,
    /// Listen power `L` (W), shared by all nodes.
    pub listen_w: f64,
    /// Transmit power `X` (W), shared by all nodes.
    pub transmit_w: f64,
    /// Per-node power budgets `ρ_i` (W), caller order.
    pub budgets_w: Vec<f64>,
}

/// One node's served policy: the fractions of time to spend listening
/// and transmitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePolicy {
    /// Listen-time fraction `α_i`.
    pub listen: f64,
    /// Transmit-time fraction `β_i`.
    pub transmit: f64,
}

/// A served policy plus its achievability certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePolicyResponse {
    /// Echo of the request's batch correlation id (wire v5; 0 = v4).
    pub corr: u32,
    /// Echo of the request id.
    pub id: u32,
    /// Which cache tier answered.
    pub tier: ServedTier,
    /// Which solve kernel produced the underlying policy.
    pub kernel: PolicyKernel,
    /// Whether the underlying dual solve met its tolerance (always
    /// true for closed-form/grid tiers).
    pub converged: bool,
    /// Expected network throughput `E_π[T_w]` under the policy.
    pub throughput: f64,
    /// Certificate: achievable lower end `T^σ`.
    pub cert_t_sigma: f64,
    /// Certificate: the LP oracle `T*`.
    pub cert_oracle: f64,
    /// Certificate: weak-duality upper bound `D(η) ≥ T*`.
    pub cert_dual_upper: f64,
    /// Per-node policies, in the *request's* node order.
    pub policies: Vec<WirePolicy>,
}

/// A per-request error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePolicyError {
    /// Echo of the request's batch correlation id (wire v5; 0 = v4).
    pub corr: u32,
    /// Echo of the request id.
    pub id: u32,
    /// What went wrong.
    pub code: ServiceErrorCode,
    /// Pacing hint for [`ServiceErrorCode::Overloaded`] (wire v6):
    /// how long the caller should back off before retrying, in
    /// microseconds (0 = "retry whenever"). Always 0 for the other
    /// codes — the `0x12` frame does not carry it.
    pub retry_after_us: u32,
}

/// Connection opener: the client introduces itself before the first
/// request. The version octet already rides every message; the hello
/// carries the client's pipelining intent so the server can size its
/// batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHello {
    /// Caller-chosen correlation id, echoed in the welcome.
    pub id: u32,
    /// Largest request batch the client intends to pipeline before
    /// reading responses (informational; 0 = unknown).
    pub max_batch: u16,
}

/// Handshake reply: the server's deployment shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireWelcome {
    /// Echo of the hello id.
    pub id: u32,
    /// Number of policy-cache shards behind this endpoint.
    pub shards: u16,
    /// Largest batch the server will serve as one unit.
    pub max_batch: u16,
}

/// Asks for one shard's serving counters
/// ([`STATS_SHARD_AGGREGATE`] = sum over all shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStatsRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u32,
    /// Shard index, or [`STATS_SHARD_AGGREGATE`].
    pub shard: u16,
}

/// Liveness probe: "are you there, and is the request path alive?".
/// Answered by [`WirePong`] echoing the id. Carries no other state —
/// the cluster layer's health checkers send these on a tight cadence
/// and must not perturb shard counters or caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePing {
    /// Caller-chosen correlation id, echoed in the pong.
    pub id: u32,
}

/// Liveness reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePong {
    /// Echo of the ping id.
    pub id: u32,
}

/// One observed homogeneous request family and its heat, the unit of
/// a [`WireMixSeed`]. Mirrors the service crate's `FamilyKey` plus its
/// observation count; floats ride as IEEE-754 bit patterns, so family
/// identity survives the wire exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireMixFamily {
    /// Node count of the family.
    pub n: u16,
    /// Listen power `L` (W).
    pub listen_w: f64,
    /// Transmit power `X` (W).
    pub transmit_w: f64,
    /// Entropy temperature σ.
    pub sigma: f64,
    /// Objective: 0 = groupput, 1 = anyput.
    pub mode: u8,
    /// Observations of this family at the sender.
    pub hits: u64,
}

/// Warm-handoff seed (wire v4): a snapshot of the sender's observed
/// homogeneous request mix, hottest families first. Sent to the shard
/// inheriting a departing owner's key range during a reshard so its
/// prewarmer starts from real heat instead of cold; answered by
/// [`WireMixAck`]. Absorbing a seed is a pure latency optimization —
/// a prewarmed grid is bit-identical to the lazily built one, so
/// responses never depend on whether a seed arrived.
#[derive(Debug, Clone, PartialEq)]
pub struct WireMixSeed {
    /// Caller-chosen correlation id, echoed in the ack.
    pub id: u32,
    /// Observed families, hottest first (≤ [`MAX_WIRE_FAMILIES`]).
    pub families: Vec<WireMixFamily>,
}

/// Warm-handoff acknowledgement: what the receiver did with the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMixAck {
    /// Echo of the seed id.
    pub id: u32,
    /// Families recorded into the receiver's mix.
    pub absorbed: u16,
    /// Grid families built eagerly while absorbing.
    pub grids_built: u16,
}

/// The serving counters of one shard (or the aggregate), mirroring
/// the service crate's `ServiceStats`. Encoded as 16 u64s in
/// declaration order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireServiceStats {
    /// Requests received (including failed ones).
    pub requests: u64,
    /// Batches served.
    pub batches: u64,
    /// Exact-match LRU hits.
    pub exact_hits: u64,
    /// Grid-interpolation hits.
    pub grid_hits: u64,
    /// Homogeneous closed-form serves.
    pub closed_form_hits: u64,
    /// Exact (P4) solver runs.
    pub solver_solves: u64,
    /// In-batch dedup hits.
    pub batch_dedup_hits: u64,
    /// Rejected requests.
    pub errors: u64,
    /// Grid families built lazily.
    pub grid_builds: u64,
    /// Grid families built by the prewarmer.
    pub grid_prewarms: u64,
    /// LRU insertions.
    pub lru_inserts: u64,
    /// LRU evictions.
    pub lru_evictions: u64,
    /// LRU resident entries.
    pub lru_len: u64,
    /// Exact-tier hits whose entry was produced by the homogeneous
    /// closed form (wire v2).
    pub exact_hits_closed_form: u64,
    /// Exact-tier hits whose entry was produced by the factorized
    /// large-N solver (wire v2).
    pub exact_hits_factorized: u64,
    /// LRU entries evicted to satisfy the cross-tier cache byte
    /// budget, as opposed to the entry-count capacity (wire v3).
    pub byte_evictions: u64,
    /// Dead backends automatically respawned and retargeted by the
    /// cluster's supervisor policy loop (wire v4; zero for plain
    /// services — the cluster front overlays it on the aggregate).
    pub auto_respawns: u64,
    /// Backend slots quarantined onto the local fallback solver after
    /// exhausting their respawn budget (wire v4).
    pub quarantines: u64,
    /// Warm mix handoffs shipped during live reshards (wire v4).
    pub reshard_handoffs: u64,
    /// Faults injected by a scripted fault plan — nonzero only under
    /// the chaos harness (wire v4).
    pub injected_faults: u64,
    /// Requests rejected with `Overloaded` by the admission ladder
    /// (wire v6; zero for peers answering at v4/v5 — the counter is
    /// simply not shipped to them).
    pub shed_rejects: u64,
    /// Requests served from the certified degraded (grid) tier at
    /// relaxed tolerance because the admission ladder was under
    /// pressure (wire v6).
    pub degraded_serves: u64,
    /// Requests whose `deadline_us` budget expired before a result
    /// could be produced — answered `Overloaded`, never late (wire
    /// v6).
    pub deadline_expired: u64,
    /// High-water mark of the admission queue depth, in requests — a
    /// gauge, not a counter: aggregation takes the max (wire v6).
    pub queue_depth_peak: u64,
}

/// Number of u64 counters in [`WireServiceStats`] — pins the wire
/// layout; adding a counter is a wire-version bump (v2 appended the
/// two kernel-resolved exact-hit counters, v3 the byte-budget
/// eviction counter, v4 the four cluster self-healing counters, v6
/// the four overload counters, keeping earlier slots stable).
pub const STATS_COUNTERS: usize = 24;

/// Counter count of the pre-v6 stats block — what a v4/v5 frame
/// carries; decoders fill the missing overload slots with zero.
pub const STATS_COUNTERS_PRE_V6: usize = 20;

/// How many stats counters a frame stamped `version` carries.
fn stats_counters_for(version: u8) -> usize {
    if version >= OVERLOAD_WIRE_VERSION {
        STATS_COUNTERS
    } else {
        STATS_COUNTERS_PRE_V6
    }
}

impl WireServiceStats {
    /// The counters in wire (declaration) order.
    pub fn to_array(self) -> [u64; STATS_COUNTERS] {
        [
            self.requests,
            self.batches,
            self.exact_hits,
            self.grid_hits,
            self.closed_form_hits,
            self.solver_solves,
            self.batch_dedup_hits,
            self.errors,
            self.grid_builds,
            self.grid_prewarms,
            self.lru_inserts,
            self.lru_evictions,
            self.lru_len,
            self.exact_hits_closed_form,
            self.exact_hits_factorized,
            self.byte_evictions,
            self.auto_respawns,
            self.quarantines,
            self.reshard_handoffs,
            self.injected_faults,
            self.shed_rejects,
            self.degraded_serves,
            self.deadline_expired,
            self.queue_depth_peak,
        ]
    }

    /// Rebuilds the struct from wire-order counters.
    pub fn from_array(c: [u64; STATS_COUNTERS]) -> Self {
        WireServiceStats {
            requests: c[0],
            batches: c[1],
            exact_hits: c[2],
            grid_hits: c[3],
            closed_form_hits: c[4],
            solver_solves: c[5],
            batch_dedup_hits: c[6],
            errors: c[7],
            grid_builds: c[8],
            grid_prewarms: c[9],
            lru_inserts: c[10],
            lru_evictions: c[11],
            lru_len: c[12],
            exact_hits_closed_form: c[13],
            exact_hits_factorized: c[14],
            byte_evictions: c[15],
            auto_respawns: c[16],
            quarantines: c[17],
            reshard_handoffs: c[18],
            injected_faults: c[19],
            shed_rejects: c[20],
            degraded_serves: c[21],
            deadline_expired: c[22],
            queue_depth_peak: c[23],
        }
    }
}

/// Stats reply for one shard (or the aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStatsResponse {
    /// Echo of the request id.
    pub id: u32,
    /// Which shard these counters describe
    /// ([`STATS_SHARD_AGGREGATE`] = the sum).
    pub shard: u16,
    /// The counters.
    pub stats: WireServiceStats,
}

/// Asks for a point-in-time snapshot of the serving process's
/// always-on metrics registry (wire v7). A cluster front answers with
/// its cluster-wide fan-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMetricsRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u32,
}

/// The wire form of one metrics scrape: dense counters, merge-kind-
/// tagged gauges (`0` = sum across sources, `1` = max), and sparse
/// log-bucket histograms — self-describing, so a fan-in merges
/// without an out-of-band schema, and a newer peer's extra registry
/// slots ride through an older relay unharmed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireMetricsSnapshot {
    /// Counter values, in the metrics registry's index order.
    pub counters: Vec<u64>,
    /// `(merge kind, value)` per gauge, registry index order.
    pub gauges: Vec<(u8, u64)>,
    /// Sparse histograms: non-zero `(bucket index, count)` pairs,
    /// ascending bucket index, registry index order.
    pub hists: Vec<Vec<(u16, u64)>>,
}

/// Metrics scrape reply (wire v7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMetricsResponse {
    /// Echo of the request id.
    pub id: u32,
    /// The snapshot.
    pub snapshot: WireMetricsSnapshot,
}

/// Any service-family message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceMessage {
    /// Client → server.
    Request(WirePolicyRequest),
    /// Server → client (success).
    Response(WirePolicyResponse),
    /// Server → client (failure).
    Error(WirePolicyError),
    /// Client → server: connection handshake opener.
    Hello(WireHello),
    /// Server → client: handshake reply with the deployment shape.
    Welcome(WireWelcome),
    /// Client → server: counter snapshot request.
    StatsRequest(WireStatsRequest),
    /// Server → client: counter snapshot.
    StatsResponse(WireStatsResponse),
    /// Client → server: liveness probe.
    Ping(WirePing),
    /// Server → client: liveness reply.
    Pong(WirePong),
    /// Peer → peer: warm-handoff request-mix seed (wire v4).
    MixSeed(WireMixSeed),
    /// Reply: what the receiver did with the seed (wire v4).
    MixAck(WireMixAck),
    /// Client → server: metrics scrape request (wire v7).
    MetricsRequest(WireMetricsRequest),
    /// Server → client: metrics snapshot (wire v7).
    MetricsResponse(WireMetricsResponse),
}

impl ServiceMessage {
    /// Encodes the message (including CRC) into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Encodes into an existing buffer (appends) at the current
    /// [`WIRE_VERSION`].
    ///
    /// # Panics
    ///
    /// Panics when a node list exceeds [`MAX_WIRE_NODES`] — requests
    /// that large cannot be framed and indicate a caller bug.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        self.encode_into_versioned(buf, WIRE_VERSION);
    }

    /// Encodes into an existing buffer (appends) at an explicit wire
    /// version — the interop path for talking to an older peer. A v4
    /// encoding drops the correlation id (the field did not exist);
    /// everything else is byte-identical apart from the version octet.
    ///
    /// # Panics
    ///
    /// Panics on a version outside
    /// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`], or when a node list
    /// exceeds [`MAX_WIRE_NODES`].
    pub fn encode_into_versioned(&self, buf: &mut BytesMut, version: u8) {
        assert!(
            (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version),
            "unsupported encode version {version}"
        );
        let start = buf.len();
        match self {
            ServiceMessage::Request(r) => {
                assert!(
                    r.budgets_w.len() <= MAX_WIRE_NODES,
                    "request exceeds MAX_WIRE_NODES"
                );
                buf.put_u8(TYPE_REQUEST);
                buf.put_u8(version);
                if version >= 5 {
                    buf.put_u32(r.corr);
                }
                buf.put_u32(r.id);
                if version >= OVERLOAD_WIRE_VERSION {
                    buf.put_u32(r.deadline_us);
                }
                buf.put_u8(r.objective.to_u8());
                buf.put_f64(r.sigma);
                buf.put_f64(r.tolerance);
                buf.put_f64(r.listen_w);
                buf.put_f64(r.transmit_w);
                buf.put_u16(r.budgets_w.len() as u16);
                for &rho in &r.budgets_w {
                    buf.put_f64(rho);
                }
            }
            ServiceMessage::Response(r) => {
                assert!(
                    r.policies.len() <= MAX_WIRE_NODES,
                    "response exceeds MAX_WIRE_NODES"
                );
                buf.put_u8(TYPE_RESPONSE);
                buf.put_u8(version);
                if version >= 5 {
                    buf.put_u32(r.corr);
                }
                buf.put_u32(r.id);
                buf.put_u8(r.tier.to_u8());
                buf.put_u8(r.kernel.to_u8());
                buf.put_u8(u8::from(r.converged));
                buf.put_f64(r.throughput);
                buf.put_f64(r.cert_t_sigma);
                buf.put_f64(r.cert_oracle);
                buf.put_f64(r.cert_dual_upper);
                buf.put_u16(r.policies.len() as u16);
                for p in &r.policies {
                    buf.put_f64(p.listen);
                    buf.put_f64(p.transmit);
                }
            }
            ServiceMessage::Error(e) => {
                if e.code == ServiceErrorCode::Overloaded {
                    // Overload rejections ride their own v6 frame so
                    // the retry hint has a place to live and pre-v6
                    // decoders never meet an unknown code octet.
                    assert!(
                        version >= OVERLOAD_WIRE_VERSION,
                        "Overloaded cannot be encoded at wire v{version}"
                    );
                    buf.put_u8(TYPE_OVERLOADED);
                    buf.put_u8(version);
                    buf.put_u32(e.corr);
                    buf.put_u32(e.id);
                    buf.put_u32(e.retry_after_us);
                } else {
                    buf.put_u8(TYPE_ERROR);
                    buf.put_u8(version);
                    if version >= 5 {
                        buf.put_u32(e.corr);
                    }
                    buf.put_u32(e.id);
                    buf.put_u8(e.code.to_u8());
                }
            }
            ServiceMessage::Hello(h) => {
                buf.put_u8(TYPE_HELLO);
                buf.put_u8(version);
                buf.put_u32(h.id);
                buf.put_u16(h.max_batch);
            }
            ServiceMessage::Welcome(w) => {
                buf.put_u8(TYPE_WELCOME);
                buf.put_u8(version);
                buf.put_u32(w.id);
                buf.put_u16(w.shards);
                buf.put_u16(w.max_batch);
            }
            ServiceMessage::StatsRequest(r) => {
                buf.put_u8(TYPE_STATS_REQUEST);
                buf.put_u8(version);
                buf.put_u32(r.id);
                buf.put_u16(r.shard);
            }
            ServiceMessage::StatsResponse(r) => {
                buf.put_u8(TYPE_STATS_RESPONSE);
                buf.put_u8(version);
                buf.put_u32(r.id);
                buf.put_u16(r.shard);
                for counter in &r.stats.to_array()[..stats_counters_for(version)] {
                    buf.put_u64(*counter);
                }
            }
            ServiceMessage::Ping(p) => {
                buf.put_u8(TYPE_PING);
                buf.put_u8(version);
                buf.put_u32(p.id);
            }
            ServiceMessage::Pong(p) => {
                buf.put_u8(TYPE_PONG);
                buf.put_u8(version);
                buf.put_u32(p.id);
            }
            ServiceMessage::MixSeed(s) => {
                assert!(
                    s.families.len() <= MAX_WIRE_FAMILIES,
                    "mix seed exceeds MAX_WIRE_FAMILIES"
                );
                buf.put_u8(TYPE_MIX_SEED);
                buf.put_u8(version);
                buf.put_u32(s.id);
                buf.put_u16(s.families.len() as u16);
                for f in &s.families {
                    buf.put_u16(f.n);
                    buf.put_f64(f.listen_w);
                    buf.put_f64(f.transmit_w);
                    buf.put_f64(f.sigma);
                    buf.put_u8(f.mode);
                    buf.put_u64(f.hits);
                }
            }
            ServiceMessage::MixAck(a) => {
                buf.put_u8(TYPE_MIX_ACK);
                buf.put_u8(version);
                buf.put_u32(a.id);
                buf.put_u16(a.absorbed);
                buf.put_u16(a.grids_built);
            }
            ServiceMessage::MetricsRequest(r) => {
                // v7-born, like the Overloaded frame at v6: never
                // encoded toward an older peer.
                assert!(
                    version >= METRICS_WIRE_VERSION,
                    "MetricsRequest cannot be encoded at wire v{version}"
                );
                buf.put_u8(TYPE_METRICS_REQUEST);
                buf.put_u8(version);
                buf.put_u32(r.id);
            }
            ServiceMessage::MetricsResponse(r) => {
                assert!(
                    version >= METRICS_WIRE_VERSION,
                    "MetricsResponse cannot be encoded at wire v{version}"
                );
                let s = &r.snapshot;
                assert!(
                    s.counters.len() <= MAX_WIRE_METRICS_COUNTERS
                        && s.gauges.len() <= MAX_WIRE_METRICS_GAUGES
                        && s.hists.len() <= MAX_WIRE_METRICS_HISTS
                        && s.hists.iter().all(|h| h.len() <= MAX_WIRE_METRICS_BUCKETS),
                    "metrics snapshot exceeds wire caps"
                );
                buf.put_u8(TYPE_METRICS_RESPONSE);
                buf.put_u8(version);
                buf.put_u32(r.id);
                buf.put_u16(s.counters.len() as u16);
                for &c in &s.counters {
                    buf.put_u64(c);
                }
                buf.put_u16(s.gauges.len() as u16);
                for &(kind, v) in &s.gauges {
                    buf.put_u8(kind);
                    buf.put_u64(v);
                }
                buf.put_u16(s.hists.len() as u16);
                for h in &s.hists {
                    buf.put_u16(h.len() as u16);
                    for &(idx, n) in h {
                        buf.put_u16(idx);
                        buf.put_u64(n);
                    }
                }
            }
        }
        let crc = crc16_ccitt(&buf[start..]);
        buf.put_u16(crc);
    }

    /// The exact encoded size in bytes at [`WIRE_VERSION`], CRC
    /// included.
    pub fn encoded_len(&self) -> usize {
        self.encoded_len_versioned(WIRE_VERSION)
    }

    /// The exact encoded size in bytes at an explicit wire version,
    /// CRC included (a v4 data-plane frame is 4 bytes shorter — no
    /// correlation id).
    pub fn encoded_len_versioned(&self, version: u8) -> usize {
        let corr = if version >= 5 { 4 } else { 0 };
        let dl = if version >= OVERLOAD_WIRE_VERSION {
            4
        } else {
            0
        };
        match self {
            ServiceMessage::Request(r) => 41 + corr + dl + 8 * r.budgets_w.len() + 2,
            ServiceMessage::Response(r) => 43 + corr + 16 * r.policies.len() + 2,
            ServiceMessage::Error(e) if e.code == ServiceErrorCode::Overloaded => 14 + 2,
            ServiceMessage::Error(_) => 7 + corr + 2,
            ServiceMessage::Hello(_) => 8 + 2,
            ServiceMessage::Welcome(_) => 10 + 2,
            ServiceMessage::StatsRequest(_) => 8 + 2,
            ServiceMessage::StatsResponse(_) => 8 + 8 * stats_counters_for(version) + 2,
            ServiceMessage::Ping(_) | ServiceMessage::Pong(_) => 6 + 2,
            ServiceMessage::MixSeed(s) => 8 + 35 * s.families.len() + 2,
            ServiceMessage::MixAck(_) => 10 + 2,
            ServiceMessage::MetricsRequest(_) => 6 + 2,
            ServiceMessage::MetricsResponse(r) => {
                let s = &r.snapshot;
                let hists: usize = s.hists.iter().map(|h| 2 + 10 * h.len()).sum();
                6 + 2 + 8 * s.counters.len() + 2 + 9 * s.gauges.len() + 2 + hists + 2
            }
        }
    }

    /// Decodes one message from the start of `data`, returning the
    /// message and the number of bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(ServiceMessage, usize), DecodeError> {
        if data.len() < 2 {
            return Err(DecodeError::Truncated {
                needed: 8,
                available: data.len(),
            });
        }
        // Total length first (needs the count field for the two
        // variable-size messages), then CRC, then version, then fields
        // — so corrupt bytes surface as BadChecksum, not field errors.
        // The three data-plane layouts depend on the version octet
        // (v5 inserts a 4-byte correlation id); an out-of-window
        // version assumes the current layout and is rejected after the
        // CRC check, so a corrupt version byte still surfaces as
        // BadChecksum.
        let corr_len: usize = if data[1] >= 5 { 4 } else { 0 };
        let dl_len: usize = if data[1] >= OVERLOAD_WIRE_VERSION {
            4
        } else {
            0
        };
        let total_len = match data[0] {
            TYPE_REQUEST => {
                let fixed = 41 + corr_len + dl_len;
                if data.len() < fixed {
                    return Err(DecodeError::Truncated {
                        needed: fixed + 2,
                        available: data.len(),
                    });
                }
                let n = u16::from_be_bytes([data[fixed - 2], data[fixed - 1]]) as usize;
                fixed + 8 * n + 2
            }
            TYPE_RESPONSE => {
                let fixed = 43 + corr_len;
                if data.len() < fixed {
                    return Err(DecodeError::Truncated {
                        needed: fixed + 2,
                        available: data.len(),
                    });
                }
                let n = u16::from_be_bytes([data[fixed - 2], data[fixed - 1]]) as usize;
                fixed + 16 * n + 2
            }
            TYPE_ERROR => 9 + corr_len,
            TYPE_OVERLOADED => 16,
            TYPE_HELLO | TYPE_STATS_REQUEST => 10,
            TYPE_WELCOME => 12,
            TYPE_STATS_RESPONSE => 10 + 8 * stats_counters_for(data[1]),
            TYPE_PING | TYPE_PONG => 8,
            TYPE_MIX_SEED => {
                if data.len() < 8 {
                    return Err(DecodeError::Truncated {
                        needed: 10,
                        available: data.len(),
                    });
                }
                let count = u16::from_be_bytes([data[6], data[7]]) as usize;
                8 + 35 * count + 2
            }
            TYPE_MIX_ACK => 12,
            TYPE_METRICS_REQUEST => 8,
            TYPE_METRICS_RESPONSE => {
                // Three counted sections, one nested — walk them to
                // find the frame length, guarding every count read.
                let read_u16 = |off: usize| -> Result<usize, DecodeError> {
                    if data.len() < off + 2 {
                        return Err(DecodeError::Truncated {
                            needed: off + 2,
                            available: data.len(),
                        });
                    }
                    Ok(u16::from_be_bytes([data[off], data[off + 1]]) as usize)
                };
                let mut off = 6; // type + ver + id
                let nc = read_u16(off)?;
                off += 2 + 8 * nc;
                let ng = read_u16(off)?;
                off += 2 + 9 * ng;
                let nh = read_u16(off)?;
                off += 2;
                for _ in 0..nh {
                    let nb = read_u16(off)?;
                    off += 2 + 10 * nb;
                }
                off + 2
            }
            t => return Err(DecodeError::UnknownFrameType(t)),
        };
        if data.len() < total_len {
            return Err(DecodeError::Truncated {
                needed: total_len,
                available: data.len(),
            });
        }
        let frame_bytes = &data[..total_len];
        let (payload, tail) = frame_bytes.split_at(total_len - 2);
        let expected = u16::from_be_bytes([tail[0], tail[1]]);
        if crc16_ccitt(payload) != expected {
            return Err(DecodeError::BadChecksum);
        }
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&payload[1]) {
            return Err(DecodeError::UnsupportedVersion(payload[1]));
        }
        let version = payload[1];

        let mut cur = &payload[2..]; // skip type + version octets
        let msg = match data[0] {
            TYPE_REQUEST => {
                let corr = if version >= 5 { cur.get_u32() } else { 0 };
                let id = cur.get_u32();
                let deadline_us = if version >= OVERLOAD_WIRE_VERSION {
                    cur.get_u32()
                } else {
                    0
                };
                let objective = WireObjective::from_u8(cur.get_u8())?;
                let sigma = cur.get_f64();
                let tolerance = cur.get_f64();
                let listen_w = cur.get_f64();
                let transmit_w = cur.get_f64();
                let n = cur.get_u16() as usize;
                if n > MAX_WIRE_NODES {
                    return Err(DecodeError::MalformedLength);
                }
                let mut budgets_w = Vec::with_capacity(n);
                for _ in 0..n {
                    budgets_w.push(cur.get_f64());
                }
                ServiceMessage::Request(WirePolicyRequest {
                    corr,
                    id,
                    deadline_us,
                    objective,
                    sigma,
                    tolerance,
                    listen_w,
                    transmit_w,
                    budgets_w,
                })
            }
            TYPE_RESPONSE => {
                let corr = if version >= 5 { cur.get_u32() } else { 0 };
                let id = cur.get_u32();
                let tier = ServedTier::from_u8(cur.get_u8())?;
                let kernel = PolicyKernel::from_u8(cur.get_u8())?;
                let converged = match cur.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::InvalidField("converged")),
                };
                let throughput = cur.get_f64();
                let cert_t_sigma = cur.get_f64();
                let cert_oracle = cur.get_f64();
                let cert_dual_upper = cur.get_f64();
                let n = cur.get_u16() as usize;
                if n > MAX_WIRE_NODES {
                    return Err(DecodeError::MalformedLength);
                }
                let mut policies = Vec::with_capacity(n);
                for _ in 0..n {
                    let listen = cur.get_f64();
                    let transmit = cur.get_f64();
                    policies.push(WirePolicy { listen, transmit });
                }
                ServiceMessage::Response(WirePolicyResponse {
                    corr,
                    id,
                    tier,
                    kernel,
                    converged,
                    throughput,
                    cert_t_sigma,
                    cert_oracle,
                    cert_dual_upper,
                    policies,
                })
            }
            TYPE_ERROR => {
                let corr = if version >= 5 { cur.get_u32() } else { 0 };
                let id = cur.get_u32();
                let code = ServiceErrorCode::from_u8(cur.get_u8())?;
                ServiceMessage::Error(WirePolicyError {
                    corr,
                    id,
                    code,
                    retry_after_us: 0,
                })
            }
            TYPE_OVERLOADED => {
                // The frame itself is v6-born: a pre-v6 stamp is a
                // peer bug (no such binary can produce it), refused
                // like any other version violation.
                if version < OVERLOAD_WIRE_VERSION {
                    return Err(DecodeError::UnsupportedVersion(version));
                }
                let corr = cur.get_u32();
                let id = cur.get_u32();
                let retry_after_us = cur.get_u32();
                ServiceMessage::Error(WirePolicyError {
                    corr,
                    id,
                    code: ServiceErrorCode::Overloaded,
                    retry_after_us,
                })
            }
            TYPE_HELLO => {
                let id = cur.get_u32();
                let max_batch = cur.get_u16();
                ServiceMessage::Hello(WireHello { id, max_batch })
            }
            TYPE_WELCOME => {
                let id = cur.get_u32();
                let shards = cur.get_u16();
                let max_batch = cur.get_u16();
                ServiceMessage::Welcome(WireWelcome {
                    id,
                    shards,
                    max_batch,
                })
            }
            TYPE_STATS_REQUEST => {
                let id = cur.get_u32();
                let shard = cur.get_u16();
                ServiceMessage::StatsRequest(WireStatsRequest { id, shard })
            }
            TYPE_STATS_RESPONSE => {
                let id = cur.get_u32();
                let shard = cur.get_u16();
                let mut counters = [0u64; STATS_COUNTERS];
                for c in counters.iter_mut().take(stats_counters_for(version)) {
                    *c = cur.get_u64();
                }
                ServiceMessage::StatsResponse(WireStatsResponse {
                    id,
                    shard,
                    stats: WireServiceStats::from_array(counters),
                })
            }
            TYPE_PING => ServiceMessage::Ping(WirePing { id: cur.get_u32() }),
            TYPE_PONG => ServiceMessage::Pong(WirePong { id: cur.get_u32() }),
            TYPE_MIX_SEED => {
                let id = cur.get_u32();
                let count = cur.get_u16() as usize;
                if count > MAX_WIRE_FAMILIES {
                    return Err(DecodeError::MalformedLength);
                }
                let mut families = Vec::with_capacity(count);
                for _ in 0..count {
                    let n = cur.get_u16();
                    let listen_w = cur.get_f64();
                    let transmit_w = cur.get_f64();
                    let sigma = cur.get_f64();
                    let mode = cur.get_u8();
                    if mode > 1 {
                        return Err(DecodeError::InvalidField("mix mode"));
                    }
                    let hits = cur.get_u64();
                    families.push(WireMixFamily {
                        n,
                        listen_w,
                        transmit_w,
                        sigma,
                        mode,
                        hits,
                    });
                }
                ServiceMessage::MixSeed(WireMixSeed { id, families })
            }
            TYPE_MIX_ACK => {
                let id = cur.get_u32();
                let absorbed = cur.get_u16();
                let grids_built = cur.get_u16();
                ServiceMessage::MixAck(WireMixAck {
                    id,
                    absorbed,
                    grids_built,
                })
            }
            TYPE_METRICS_REQUEST | TYPE_METRICS_RESPONSE => {
                // The pair is v7-born: a pre-v7 stamp is a peer bug
                // (no such binary can produce it) — refused like a
                // pre-v6 Overloaded frame.
                if version < METRICS_WIRE_VERSION {
                    return Err(DecodeError::UnsupportedVersion(version));
                }
                if data[0] == TYPE_METRICS_REQUEST {
                    ServiceMessage::MetricsRequest(WireMetricsRequest { id: cur.get_u32() })
                } else {
                    let id = cur.get_u32();
                    let nc = cur.get_u16() as usize;
                    if nc > MAX_WIRE_METRICS_COUNTERS {
                        return Err(DecodeError::MalformedLength);
                    }
                    let mut counters = Vec::with_capacity(nc);
                    for _ in 0..nc {
                        counters.push(cur.get_u64());
                    }
                    let ng = cur.get_u16() as usize;
                    if ng > MAX_WIRE_METRICS_GAUGES {
                        return Err(DecodeError::MalformedLength);
                    }
                    let mut gauges = Vec::with_capacity(ng);
                    for _ in 0..ng {
                        let kind = cur.get_u8();
                        if kind > 1 {
                            return Err(DecodeError::InvalidField("gauge kind"));
                        }
                        gauges.push((kind, cur.get_u64()));
                    }
                    let nh = cur.get_u16() as usize;
                    if nh > MAX_WIRE_METRICS_HISTS {
                        return Err(DecodeError::MalformedLength);
                    }
                    let mut hists = Vec::with_capacity(nh);
                    for _ in 0..nh {
                        let nb = cur.get_u16() as usize;
                        if nb > MAX_WIRE_METRICS_BUCKETS {
                            return Err(DecodeError::MalformedLength);
                        }
                        let mut buckets = Vec::with_capacity(nb);
                        for _ in 0..nb {
                            let idx = cur.get_u16();
                            buckets.push((idx, cur.get_u64()));
                        }
                        // Ascending-index discipline is part of the
                        // format: it makes merge linear and equality
                        // canonical.
                        if buckets.windows(2).any(|w| w[0].0 >= w[1].0) {
                            return Err(DecodeError::InvalidField("hist bucket order"));
                        }
                        hists.push(buckets);
                    }
                    ServiceMessage::MetricsResponse(WireMetricsResponse {
                        id,
                        snapshot: WireMetricsSnapshot {
                            counters,
                            gauges,
                            hists,
                        },
                    })
                }
            }
            _ => unreachable!("validated above"),
        };
        Ok((msg, total_len))
    }
}

/// Incremental encoder/decoder for a stream of length-prefixed service
/// messages — the service-side twin of [`crate::StreamCodec`], with
/// the same `u16` length prefix and fatal-error semantics.
///
/// The codec also carries the per-connection version state of the v4/v5
/// interop story: it remembers the version octet of the last frame it
/// decoded ([`ServiceCodec::peer_version`], what the peer speaks) and
/// can be clamped to an older ceiling ([`ServiceCodec::set_max_version`],
/// emulating a pre-v5 binary that drops newer frames as
/// [`DecodeError::UnsupportedVersion`]).
#[derive(Debug)]
pub struct ServiceCodec {
    buffer: BytesMut,
    peer_version: Option<u8>,
    max_version: u8,
}

impl Default for ServiceCodec {
    fn default() -> Self {
        ServiceCodec {
            buffer: BytesMut::new(),
            peer_version: None,
            max_version: WIRE_VERSION,
        }
    }
}

impl ServiceCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one message with its length prefix into `out`.
    pub fn encode(msg: &ServiceMessage, out: &mut BytesMut) {
        Self::encode_versioned(msg, out, WIRE_VERSION);
    }

    /// Encodes one message with its length prefix into `out` at an
    /// explicit wire version (the reply path of a server talking to a
    /// v4 client, or a v4-emulating test peer).
    pub fn encode_versioned(msg: &ServiceMessage, out: &mut BytesMut, version: u8) {
        let len = msg.encoded_len_versioned(version);
        assert!(len <= u16::MAX as usize, "message too large for u16 prefix");
        out.put_u16(len as u16);
        msg.encode_into_versioned(out, version);
    }

    /// Appends received bytes to the internal reassembly buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet decoded.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// The version octet of the last successfully decoded frame — what
    /// the peer actually speaks. `None` until the first frame arrives.
    pub fn peer_version(&self) -> Option<u8> {
        self.peer_version
    }

    /// Clamps the newest frame version this codec accepts. Frames above
    /// the ceiling fail with [`DecodeError::UnsupportedVersion`] even
    /// though this build could parse them — exactly how a binary built
    /// at that older version behaves, which is what the cross-version
    /// interop tests need to emulate.
    pub fn set_max_version(&mut self, version: u8) {
        self.max_version = version;
    }

    /// Attempts to decode the next complete message. `Ok(None)` means
    /// more bytes are needed; errors are fatal for the stream.
    pub fn next_message(&mut self) -> Result<Option<ServiceMessage>, DecodeError> {
        if self.buffer.len() < 2 {
            return Ok(None);
        }
        let len = u16::from_be_bytes([self.buffer[0], self.buffer[1]]) as usize;
        if self.buffer.len() < 2 + len {
            return Ok(None);
        }
        // Decode in place from the reassembly buffer — no per-message
        // allocation; the cursor only advances once the frame parsed.
        let frame = &self.buffer[2..2 + len];
        let (msg, used) = ServiceMessage::decode(frame)?;
        if used != len {
            return Err(DecodeError::MalformedLength);
        }
        let version = frame[1]; // validated by decode
        if version > self.max_version {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        self.peer_version = Some(version);
        self.buffer.advance(2 + len);
        Ok(Some(msg))
    }

    /// Drains all currently decodable messages.
    pub fn drain(&mut self) -> Result<Vec<ServiceMessage>, DecodeError> {
        let t0 = econcast_trace::armed_now();
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        // Idle read ticks drain nothing — don't trace those.
        if !out.is_empty() {
            econcast_trace::complete_from(
                "proto",
                "frame_decode",
                t0,
                &[("msgs", out.len() as u64)],
            );
        }
        Ok(out)
    }
}

/// Reusable scatter buffer for the pipelined write path: frames are
/// encoded back to back into one backing buffer that survives across
/// batches, so a steady-state submit allocates nothing — the buffer is
/// cleared (capacity kept) once the kernel has taken every byte. One
/// large contiguous write per batch replaces the per-message
/// `BytesMut` churn of the old path.
///
/// The writer loop is: [`push_all`](ScatterEncoder::push_all) (or
/// [`push`](ScatterEncoder::push)) to frame messages, then alternate
/// [`pending`](ScatterEncoder::pending) →
/// `write` → [`advance`](ScatterEncoder::advance) until
/// [`is_drained`](ScatterEncoder::is_drained).
#[derive(Debug, Default)]
pub struct ScatterEncoder {
    buf: BytesMut,
    written: usize,
    frames: usize,
}

impl ScatterEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all buffered frames and resets the write cursor, keeping
    /// the backing allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.written = 0;
        self.frames = 0;
    }

    /// Appends one length-prefixed frame at the given wire version.
    pub fn push(&mut self, msg: &ServiceMessage, version: u8) {
        ServiceCodec::encode_versioned(msg, &mut self.buf, version);
        self.frames += 1;
    }

    /// Appends a batch of length-prefixed frames, traced as one
    /// `proto/frame_encode` span — the scatter-path twin of the span
    /// the server's reply encoder emits, so the traced frame lifecycle
    /// stays complete on the pipelined path.
    pub fn push_all<'a>(
        &mut self,
        msgs: impl IntoIterator<Item = &'a ServiceMessage>,
        version: u8,
    ) {
        let t0 = econcast_trace::armed_now();
        let before = self.frames;
        for m in msgs {
            self.push(m, version);
        }
        if self.frames > before {
            econcast_trace::complete_from(
                "proto",
                "frame_encode",
                t0,
                &[("msgs", (self.frames - before) as u64)],
            );
        }
    }

    /// The encoded bytes not yet handed to the kernel.
    pub fn pending(&self) -> &[u8] {
        &self.buf[self.written..]
    }

    /// Whether every buffered byte has been written out.
    pub fn is_drained(&self) -> bool {
        self.written == self.buf.len()
    }

    /// Marks `n` bytes as written. Once the buffer fully drains it is
    /// cleared in place, so the capacity is reused by the next batch.
    pub fn advance(&mut self, n: usize) {
        self.written += n;
        debug_assert!(self.written <= self.buf.len(), "advanced past the buffer");
        if self.written >= self.buf.len() {
            self.clear();
        }
    }

    /// Frames pushed since the last full drain.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Total buffered bytes (written or not).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds no frames at all.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_request() -> ServiceMessage {
        ServiceMessage::Request(WirePolicyRequest {
            corr: 0xAB0BA,
            id: 7,
            deadline_us: 250_000,
            objective: WireObjective::Groupput,
            sigma: 0.5,
            tolerance: 1e-3,
            listen_w: 500e-6,
            transmit_w: 450e-6,
            budgets_w: vec![10e-6, 20e-6, 5e-6],
        })
    }

    fn sample_response() -> ServiceMessage {
        ServiceMessage::Response(WirePolicyResponse {
            corr: 0xAB0BA,
            id: 7,
            tier: ServedTier::Grid,
            kernel: PolicyKernel::Grid,
            converged: true,
            throughput: 3.25,
            cert_t_sigma: 3.25,
            cert_oracle: 4.0,
            cert_dual_upper: 4.5,
            policies: vec![
                WirePolicy {
                    listen: 0.1,
                    transmit: 0.02,
                },
                WirePolicy {
                    listen: 0.2,
                    transmit: 0.04,
                },
            ],
        })
    }

    #[test]
    fn request_roundtrip_and_size() {
        let m = sample_request();
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        assert_eq!(b.len(), 49 + 24 + 2, "v6 request: 41 + corr + deadline");
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
    }

    /// A v5 encoding of a deadline-carrying request keeps the v5 byte
    /// layout exactly (no deadline field) and decodes back with
    /// `deadline_us = 0` — the deadline is a v6 privilege.
    #[test]
    fn v5_request_drops_deadline() {
        let m = sample_request();
        let mut b = BytesMut::new();
        m.encode_into_versioned(&mut b, 5);
        assert_eq!(b.len(), m.encoded_len_versioned(5));
        assert_eq!(b.len(), 45 + 24 + 2, "v5 layout unchanged");
        let (decoded, _) = ServiceMessage::decode(&b).unwrap();
        let ServiceMessage::Request(mut expect) = m else {
            unreachable!()
        };
        expect.deadline_us = 0;
        assert_eq!(decoded, ServiceMessage::Request(expect));
    }

    #[test]
    fn response_roundtrip_and_size() {
        let m = sample_response();
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        assert_eq!(b.len(), 47 + 32 + 2);
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
    }

    #[test]
    fn error_roundtrip() {
        for code in [ServiceErrorCode::BadRequest, ServiceErrorCode::TooLarge] {
            let m = ServiceMessage::Error(WirePolicyError {
                corr: 3,
                id: 9,
                code,
                retry_after_us: 0,
            });
            let b = m.encode();
            assert_eq!(b.len(), 13);
            assert_eq!(ServiceMessage::decode(&b).unwrap().0, m);
        }
    }

    #[test]
    fn overloaded_roundtrip_and_size() {
        let m = ServiceMessage::Error(WirePolicyError {
            corr: 0xC0FFEE,
            id: 42,
            code: ServiceErrorCode::Overloaded,
            retry_after_us: 1_500,
        });
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        assert_eq!(b.len(), 16, "0x1B frame: hdr + corr + id + retry + crc");
        assert_eq!(b[0], 0x1B);
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
        for cut in 0..b.len() {
            assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
        // A pre-v6 stamp on the v6-born frame (valid CRC) is refused:
        // no v5 binary can have produced it.
        let mut forged = b.to_vec();
        forged[1] = 5;
        let body_len = forged.len() - 2;
        let crc = crate::crc::crc16_ccitt(&forged[..body_len]);
        forged[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&forged),
            Err(DecodeError::UnsupportedVersion(5))
        );
    }

    #[test]
    #[should_panic(expected = "Overloaded cannot be encoded at wire v5")]
    fn overloaded_refuses_pre_v6_encode() {
        let m = ServiceMessage::Error(WirePolicyError {
            corr: 1,
            id: 2,
            code: ServiceErrorCode::Overloaded,
            retry_after_us: 3,
        });
        let mut b = BytesMut::new();
        m.encode_into_versioned(&mut b, 5);
    }

    fn sample_metrics_response() -> ServiceMessage {
        ServiceMessage::MetricsResponse(WireMetricsResponse {
            id: 77,
            snapshot: WireMetricsSnapshot {
                counters: vec![1, 0, u64::MAX, 42],
                gauges: vec![(0, 9), (1, 1_000_000)],
                hists: vec![vec![(0, 3), (17, 5), (495, 1)], vec![]],
            },
        })
    }

    #[test]
    fn metrics_request_roundtrip_and_size() {
        let m = ServiceMessage::MetricsRequest(WireMetricsRequest { id: 0xFEED });
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        assert_eq!(b.len(), 8, "0x1C frame: hdr + id + crc");
        assert_eq!(b[0], 0x1C);
        assert_eq!(b[1], WIRE_VERSION);
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
        for cut in 0..b.len() {
            assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
        // A pre-v7 stamp on the v7-born frame (valid CRC) is refused:
        // no v6 binary can have produced it.
        let mut forged = b.to_vec();
        forged[1] = 6;
        let body_len = forged.len() - 2;
        let crc = crate::crc::crc16_ccitt(&forged[..body_len]);
        forged[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&forged),
            Err(DecodeError::UnsupportedVersion(6))
        );
    }

    #[test]
    fn metrics_response_roundtrip_and_size() {
        let m = sample_metrics_response();
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        // 6 hdr + (2 + 4·8) counters + (2 + 2·9) gauges
        // + (2 + (2 + 3·10) + (2 + 0)) hists + 2 crc
        assert_eq!(b.len(), 6 + 34 + 20 + 36 + 2);
        assert_eq!(b[0], 0x1D);
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
        for cut in 0..b.len() {
            assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
        let mut forged = b.to_vec();
        forged[1] = 6;
        let body_len = forged.len() - 2;
        let crc = crate::crc::crc16_ccitt(&forged[..body_len]);
        forged[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&forged),
            Err(DecodeError::UnsupportedVersion(6))
        );

        // The empty snapshot is the minimal well-formed scrape.
        let empty = ServiceMessage::MetricsResponse(WireMetricsResponse {
            id: 0,
            snapshot: WireMetricsSnapshot::default(),
        });
        let be = empty.encode();
        assert_eq!(be.len(), 14);
        assert_eq!(ServiceMessage::decode(&be).unwrap().0, empty);
    }

    #[test]
    #[should_panic(expected = "MetricsRequest cannot be encoded at wire v6")]
    fn metrics_request_refuses_pre_v7_encode() {
        let m = ServiceMessage::MetricsRequest(WireMetricsRequest { id: 1 });
        let mut b = BytesMut::new();
        m.encode_into_versioned(&mut b, 6);
    }

    #[test]
    #[should_panic(expected = "MetricsResponse cannot be encoded at wire v6")]
    fn metrics_response_refuses_pre_v7_encode() {
        let m = sample_metrics_response();
        let mut b = BytesMut::new();
        m.encode_into_versioned(&mut b, 6);
    }

    #[test]
    fn metrics_hist_bucket_order_enforced() {
        // Out-of-order (and duplicate) bucket indices encode fine —
        // the discipline is enforced where it matters, at decode.
        for buckets in [vec![(5u16, 1u64), (3, 2)], vec![(5, 1), (5, 2)]] {
            let m = ServiceMessage::MetricsResponse(WireMetricsResponse {
                id: 1,
                snapshot: WireMetricsSnapshot {
                    counters: vec![],
                    gauges: vec![],
                    hists: vec![buckets],
                },
            });
            assert_eq!(
                ServiceMessage::decode(&m.encode()),
                Err(DecodeError::InvalidField("hist bucket order"))
            );
        }
    }

    #[test]
    fn metrics_gauge_kind_rejected() {
        let m = ServiceMessage::MetricsResponse(WireMetricsResponse {
            id: 1,
            snapshot: WireMetricsSnapshot {
                counters: vec![],
                gauges: vec![(2, 7)],
                hists: vec![],
            },
        });
        assert_eq!(
            ServiceMessage::decode(&m.encode()),
            Err(DecodeError::InvalidField("gauge kind"))
        );
    }

    #[test]
    fn metrics_counter_cap_enforced() {
        // Hand-assemble a frame whose counter count exceeds the cap
        // (the encoder refuses to produce one) with a valid CRC, so
        // the cap check itself is exercised rather than the CRC.
        let over = MAX_WIRE_METRICS_COUNTERS + 1;
        let mut raw = vec![TYPE_METRICS_RESPONSE, WIRE_VERSION];
        raw.extend_from_slice(&7u32.to_be_bytes());
        raw.extend_from_slice(&(over as u16).to_be_bytes());
        raw.resize(raw.len() + 8 * over, 0);
        raw.extend_from_slice(&0u16.to_be_bytes()); // ng
        raw.extend_from_slice(&0u16.to_be_bytes()); // nh
        let crc = crate::crc::crc16_ccitt(&raw);
        raw.extend_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&raw),
            Err(DecodeError::MalformedLength)
        );
    }

    #[test]
    fn handshake_and_stats_roundtrip() {
        let stats = WireServiceStats {
            requests: 1,
            batches: 2,
            exact_hits: 3,
            grid_hits: 4,
            closed_form_hits: 5,
            solver_solves: 6,
            batch_dedup_hits: 7,
            errors: 8,
            grid_builds: 9,
            grid_prewarms: 10,
            lru_inserts: 11,
            lru_evictions: 12,
            lru_len: 13,
            exact_hits_closed_form: 14,
            exact_hits_factorized: 15,
            byte_evictions: 16,
            auto_respawns: 17,
            quarantines: 18,
            reshard_handoffs: 19,
            injected_faults: 20,
            shed_rejects: 21,
            degraded_serves: 22,
            deadline_expired: 23,
            queue_depth_peak: 24,
        };
        for m in [
            ServiceMessage::Hello(WireHello {
                id: 3,
                max_batch: 256,
            }),
            ServiceMessage::Welcome(WireWelcome {
                id: 3,
                shards: 4,
                max_batch: 1024,
            }),
            ServiceMessage::StatsRequest(WireStatsRequest {
                id: 9,
                shard: STATS_SHARD_AGGREGATE,
            }),
            ServiceMessage::StatsResponse(WireStatsResponse {
                id: 9,
                shard: 2,
                stats,
            }),
            ServiceMessage::Ping(WirePing { id: 11 }),
            ServiceMessage::Pong(WirePong { id: 11 }),
        ] {
            let b = m.encode();
            assert_eq!(b.len(), m.encoded_len());
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            assert_eq!(decoded, m);
            assert_eq!(used, b.len());
            // Truncations of the fixed-size messages fail cleanly.
            for cut in 0..b.len() {
                assert!(matches!(
                    ServiceMessage::decode(&b[..cut]),
                    Err(DecodeError::Truncated { .. })
                ));
            }
        }
        // Counter order is pinned: array round-trip is the identity,
        // and the v2 counters append after v1's 13 stable slots.
        assert_eq!(WireServiceStats::from_array(stats.to_array()), stats);
        assert_eq!(stats.to_array()[9], 10, "grid_prewarms rides slot 9");
        assert_eq!(stats.to_array()[13], 14, "closed-form hits ride slot 13");
        assert_eq!(stats.to_array()[14], 15, "factorized hits ride slot 14");
        assert_eq!(stats.to_array()[15], 16, "byte evictions ride slot 15");
        assert_eq!(stats.to_array()[16], 17, "auto respawns ride slot 16");
        assert_eq!(stats.to_array()[17], 18, "quarantines ride slot 17");
        assert_eq!(stats.to_array()[18], 19, "reshard handoffs ride slot 18");
        assert_eq!(stats.to_array()[19], 20, "injected faults ride slot 19");
        assert_eq!(stats.to_array()[20], 21, "shed rejects ride slot 20");
        assert_eq!(stats.to_array()[21], 22, "degraded serves ride slot 21");
        assert_eq!(stats.to_array()[22], 23, "deadline expiries ride slot 22");
        assert_eq!(stats.to_array()[23], 24, "queue depth peak rides slot 23");

        // A v5 stats frame ships only the 20 pre-v6 counters; the
        // overload slots come back zero, everything else intact.
        let v6_frame = ServiceMessage::StatsResponse(WireStatsResponse {
            id: 9,
            shard: 2,
            stats,
        });
        let mut v5_frame = BytesMut::new();
        v6_frame.encode_into_versioned(&mut v5_frame, 5);
        assert_eq!(v5_frame.len(), 8 + 8 * STATS_COUNTERS_PRE_V6 + 2);
        let (decoded, _) = ServiceMessage::decode(&v5_frame).unwrap();
        let ServiceMessage::StatsResponse(r) = decoded else {
            panic!("stats frame decoded as something else");
        };
        assert_eq!(r.stats.injected_faults, 20);
        assert_eq!(r.stats.shed_rejects, 0);
        assert_eq!(r.stats.queue_depth_peak, 0);
    }

    #[test]
    fn ping_pong_roundtrip_and_size() {
        // The v3 health pair mirrors the 0x13..0x16 family: fixed
        // size, CRC-checked, id echo intact.
        let ping = ServiceMessage::Ping(WirePing { id: 0xDEAD_BEEF });
        let pong = ServiceMessage::Pong(WirePong { id: 0xDEAD_BEEF });
        for m in [ping, pong] {
            let b = m.encode();
            assert_eq!(b.len(), m.encoded_len());
            assert_eq!(b.len(), 8);
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            assert_eq!(decoded, m);
            assert_eq!(used, b.len());
        }
        // Ping and pong are distinct types: one never decodes as the
        // other even with identical ids.
        let pb = ServiceMessage::Ping(WirePing { id: 5 }).encode();
        assert!(matches!(
            ServiceMessage::decode(&pb).unwrap().0,
            ServiceMessage::Ping(_)
        ));
    }

    fn sample_mix_seed() -> ServiceMessage {
        ServiceMessage::MixSeed(WireMixSeed {
            id: 21,
            families: vec![
                WireMixFamily {
                    n: 12,
                    listen_w: 500e-6,
                    transmit_w: 450e-6,
                    sigma: 0.5,
                    mode: 0,
                    hits: 9,
                },
                WireMixFamily {
                    n: 96,
                    listen_w: 500e-6,
                    transmit_w: 450e-6,
                    sigma: 0.25,
                    mode: 1,
                    hits: 4,
                },
            ],
        })
    }

    #[test]
    fn mix_seed_roundtrip_and_size() {
        let m = sample_mix_seed();
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        assert_eq!(b.len(), 8 + 35 * 2 + 2);
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
        // Empty seeds are legal (a shard with no recorded mix).
        let empty = ServiceMessage::MixSeed(WireMixSeed {
            id: 1,
            families: vec![],
        });
        let be = empty.encode();
        assert_eq!(be.len(), 10);
        assert_eq!(ServiceMessage::decode(&be).unwrap().0, empty);
    }

    #[test]
    fn mix_ack_roundtrip_and_size() {
        let m = ServiceMessage::MixAck(WireMixAck {
            id: 21,
            absorbed: 2,
            grids_built: 1,
        });
        let b = m.encode();
        assert_eq!(b.len(), m.encoded_len());
        assert_eq!(b.len(), 12);
        let (decoded, used) = ServiceMessage::decode(&b).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(used, b.len());
        for cut in 0..b.len() {
            assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn mix_seed_invalid_mode_rejected() {
        // A mode octet ≥ 2 with a *valid* CRC must fail as a field
        // error, not slip through as a bogus objective.
        let mut b = sample_mix_seed().encode().to_vec();
        let mode_off = 8 + 2 + 24; // first family's mode octet
        assert_eq!(b[mode_off], 0);
        b[mode_off] = 2;
        let body_len = b.len() - 2;
        let crc = crate::crc::crc16_ccitt(&b[..body_len]);
        b[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&b),
            Err(DecodeError::InvalidField("mix mode"))
        );
    }

    #[test]
    fn stats_corruption_detected() {
        let mut b = ServiceMessage::StatsResponse(WireStatsResponse {
            id: 1,
            shard: 0,
            stats: WireServiceStats::default(),
        })
        .encode()
        .to_vec();
        b[20] ^= 0x01; // inside the counter block
        assert_eq!(ServiceMessage::decode(&b), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn version_mismatch_rejected() {
        // Rebuild the message with a bumped version byte and a *valid*
        // CRC, so the version check itself is exercised.
        let mut b = sample_request().encode().to_vec();
        b[1] = WIRE_VERSION + 1;
        let body_len = b.len() - 2;
        let crc = crate::crc::crc16_ccitt(&b[..body_len]);
        b[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&b),
            Err(DecodeError::UnsupportedVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn corrupt_crc_rejected_before_fields() {
        // Corrupting the objective byte must surface as BadChecksum
        // (integrity first), not InvalidField.
        let mut b = sample_request().encode().to_vec();
        b[10] = 0x7F; // objective octet (after type+ver+corr+id)
        assert_eq!(ServiceMessage::decode(&b), Err(DecodeError::BadChecksum));
    }

    #[test]
    fn truncation_reports_needed_bytes() {
        let b = sample_response().encode();
        match ServiceMessage::decode(&b[..b.len() - 1]) {
            Err(DecodeError::Truncated { needed, available }) => {
                assert_eq!(needed, b.len());
                assert_eq!(available, b.len() - 1);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert!(matches!(
            ServiceMessage::decode(&[]),
            Err(DecodeError::Truncated { .. })
        ));
        // Cut inside the fixed header, before the count field.
        assert!(matches!(
            ServiceMessage::decode(&b[..20]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        assert_eq!(
            ServiceMessage::decode(&[0x42, 1, 0, 0]),
            Err(DecodeError::UnknownFrameType(0x42))
        );
    }

    #[test]
    fn codec_roundtrip_with_chunked_feed() {
        let msgs = vec![sample_request(), sample_response()];
        let mut wire = BytesMut::new();
        for m in &msgs {
            ServiceCodec::encode(m, &mut wire);
        }
        let mut codec = ServiceCodec::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(5) {
            codec.feed(piece);
            while let Some(m) = codec.next_message().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, msgs);
        assert_eq!(codec.pending(), 0);
    }

    #[test]
    fn codec_corruption_is_fatal() {
        let mut wire = BytesMut::new();
        ServiceCodec::encode(&sample_request(), &mut wire);
        wire[10] ^= 0xFF;
        let mut codec = ServiceCodec::new();
        codec.feed(&wire);
        assert!(codec.next_message().is_err());
    }

    /// A v4 encoding of the three data-plane messages keeps the v4
    /// byte layout exactly (4 bytes shorter — no correlation id) and
    /// decodes on a v5 binary with `corr = 0`.
    #[test]
    fn v4_frames_roundtrip_with_zero_corr() {
        let strip_corr = |m: &ServiceMessage| match m.clone() {
            ServiceMessage::Request(mut r) => {
                r.corr = 0;
                r.deadline_us = 0;
                ServiceMessage::Request(r)
            }
            ServiceMessage::Response(mut r) => {
                r.corr = 0;
                ServiceMessage::Response(r)
            }
            ServiceMessage::Error(mut e) => {
                e.corr = 0;
                ServiceMessage::Error(e)
            }
            other => other,
        };
        let error = ServiceMessage::Error(WirePolicyError {
            corr: 55,
            id: 9,
            code: ServiceErrorCode::TooLarge,
            retry_after_us: 0,
        });
        for (m, v4_len) in [
            (sample_request(), 41 + 24 + 2),
            (sample_response(), 43 + 32 + 2),
            (error, 9),
        ] {
            let mut b = BytesMut::new();
            m.encode_into_versioned(&mut b, 4);
            assert_eq!(b.len(), m.encoded_len_versioned(4));
            assert_eq!(b.len(), v4_len);
            assert_eq!(b[1], 4, "version octet rides at offset 1");
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            assert_eq!(used, b.len());
            assert_eq!(decoded, strip_corr(&m));
        }
        // Non-data-plane messages only differ in the version octet.
        let ping = ServiceMessage::Ping(WirePing { id: 3 });
        let mut b4 = BytesMut::new();
        ping.encode_into_versioned(&mut b4, 4);
        let b5 = ping.encode();
        assert_eq!(b4.len(), b5.len());
        assert_eq!(ServiceMessage::decode(&b4).unwrap().0, ping);
    }

    #[test]
    fn versions_below_min_rejected() {
        // A v3-stamped frame (v4 layout, valid CRC) must be refused —
        // the compat window opens at MIN_WIRE_VERSION, not at zero.
        let mut b = BytesMut::new();
        sample_request().encode_into_versioned(&mut b, 4);
        let mut b = b.to_vec();
        b[1] = MIN_WIRE_VERSION - 1;
        let body_len = b.len() - 2;
        let crc = crate::crc::crc16_ccitt(&b[..body_len]);
        b[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            ServiceMessage::decode(&b),
            Err(DecodeError::UnsupportedVersion(MIN_WIRE_VERSION - 1))
        );
    }

    /// The codec remembers what the peer speaks and can emulate an
    /// older binary via the max-version clamp.
    #[test]
    fn codec_tracks_peer_version_and_clamps() {
        let mut codec = ServiceCodec::new();
        assert_eq!(codec.peer_version(), None);

        let mut v5 = BytesMut::new();
        ServiceCodec::encode(&sample_request(), &mut v5);
        codec.feed(&v5);
        assert!(codec.next_message().unwrap().is_some());
        assert_eq!(codec.peer_version(), Some(WIRE_VERSION));

        let mut v4 = BytesMut::new();
        ServiceCodec::encode_versioned(&sample_request(), &mut v4, 4);
        codec.feed(&v4);
        assert!(codec.next_message().unwrap().is_some());
        assert_eq!(codec.peer_version(), Some(4));

        // A v4-clamped codec refuses v5 frames the way a real v4
        // binary would — UnsupportedVersion, fatal for the stream.
        let mut old = ServiceCodec::new();
        old.set_max_version(4);
        old.feed(&v4);
        assert!(old.next_message().unwrap().is_some());
        old.feed(&v5);
        assert_eq!(
            old.next_message(),
            Err(DecodeError::UnsupportedVersion(WIRE_VERSION))
        );
    }

    /// The scatter encoder frames batches into one reusable buffer:
    /// the bytes are exactly the per-message codec's, and a drained
    /// buffer resets for the next batch without dropping frames.
    #[test]
    fn scatter_encoder_matches_codec_bytes_and_reuses_buffer() {
        let msgs = vec![sample_request(), sample_response()];
        let mut reference = BytesMut::new();
        for m in &msgs {
            ServiceCodec::encode(m, &mut reference);
        }
        let mut enc = ScatterEncoder::new();
        enc.push_all(&msgs, WIRE_VERSION);
        assert_eq!(enc.frames(), 2);
        assert_eq!(enc.pending(), &reference[..]);

        // Partial writes advance the cursor without re-encoding.
        let half = enc.pending().len() / 2;
        let tail = enc.pending()[half..].to_vec();
        enc.advance(half);
        assert_eq!(enc.pending(), &tail[..]);
        assert!(!enc.is_drained());
        enc.advance(tail.len());
        assert!(enc.is_drained());
        assert!(enc.is_empty());
        assert_eq!(enc.frames(), 0);

        // The next batch reuses the cleared buffer and still decodes.
        enc.push_all(&msgs, WIRE_VERSION);
        let mut codec = ServiceCodec::new();
        codec.feed(enc.pending());
        let mut decoded = Vec::new();
        while let Some(m) = codec.next_message().unwrap() {
            decoded.push(m);
        }
        assert_eq!(decoded, msgs);
    }

    proptest! {
        /// Arbitrary (finite-float) requests round-trip exactly.
        #[test]
        fn prop_request_roundtrip(
            corr in any::<u32>(),
            id in any::<u32>(),
            deadline_us in any::<u32>(),
            obj in 0u8..2,
            sigma in 0.01f64..10.0,
            tol in 1e-9f64..1.0,
            l in 1e-9f64..1.0,
            x in 1e-9f64..1.0,
            budgets in proptest::collection::vec(1e-9f64..1.0, 0..40),
        ) {
            let m = ServiceMessage::Request(WirePolicyRequest {
                corr,
                id,
                deadline_us,
                objective: WireObjective::from_u8(obj).unwrap(),
                sigma,
                tolerance: tol,
                listen_w: l,
                transmit_w: x,
                budgets_w: budgets,
            });
            let b = m.encode();
            prop_assert_eq!(b.len(), m.encoded_len());
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(decoded, m);
            prop_assert_eq!(used, b.len());
        }

        /// Arbitrary responses round-trip exactly.
        #[test]
        fn prop_response_roundtrip(
            corr in any::<u32>(),
            id in any::<u32>(),
            tier in 0u8..4,
            kernel in 0u8..4,
            converged in any::<bool>(),
            t in 0.0f64..100.0,
            policies in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..40),
        ) {
            let m = ServiceMessage::Response(WirePolicyResponse {
                corr,
                id,
                tier: ServedTier::from_u8(tier).unwrap(),
                kernel: PolicyKernel::from_u8(kernel).unwrap(),
                converged,
                throughput: t,
                cert_t_sigma: t,
                cert_oracle: t * 1.25,
                cert_dual_upper: t * 1.5,
                policies: policies
                    .into_iter()
                    .map(|(listen, transmit)| WirePolicy { listen, transmit })
                    .collect(),
            });
            let b = m.encode();
            prop_assert_eq!(b.len(), m.encoded_len());
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(decoded, m);
            prop_assert_eq!(used, b.len());
        }

        /// Every truncation of a valid encoding fails with Truncated —
        /// never a panic, never a bogus success.
        #[test]
        fn prop_truncations_fail_cleanly(
            corr in any::<u32>(),
            budgets in proptest::collection::vec(1e-9f64..1.0, 1..20),
            cut_frac in 0.0f64..1.0,
        ) {
            let m = ServiceMessage::Request(WirePolicyRequest {
                corr,
                id: 1,
                deadline_us: 0,
                objective: WireObjective::Anyput,
                sigma: 0.5,
                tolerance: 1e-3,
                listen_w: 1e-3,
                transmit_w: 1e-3,
                budgets_w: budgets,
            });
            let b = m.encode();
            let cut = ((b.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }

        /// Single-byte corruption anywhere in the body is caught by the
        /// CRC (or, for the leading type octet, by type validation).
        #[test]
        fn prop_corruption_detected(
            pos_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let m = sample_response();
            let mut b = m.encode().to_vec();
            let pos = ((b.len() - 1) as f64 * pos_frac) as usize;
            b[pos] ^= flip;
            let r = ServiceMessage::decode(&b);
            // Corrupting a count field can also shift the expected
            // length (Truncated); all are clean rejections.
            prop_assert!(r.is_err());
        }

        /// Random garbage never panics the decoder.
        #[test]
        fn prop_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = ServiceMessage::decode(&bytes);
        }

        /// Ping/Pong round-trip for arbitrary ids, and every proper
        /// truncation fails with Truncated — mirroring the
        /// 0x13..0x16 handshake/stats suite for the v3 health pair.
        #[test]
        fn prop_ping_pong_roundtrip_and_truncation(
            id in any::<u32>(),
            pong in any::<bool>(),
        ) {
            let m = if pong {
                ServiceMessage::Pong(WirePong { id })
            } else {
                ServiceMessage::Ping(WirePing { id })
            };
            let b = m.encode();
            prop_assert_eq!(b.len(), m.encoded_len());
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(decoded, m);
            prop_assert_eq!(used, b.len());
            for cut in 0..b.len() {
                prop_assert!(matches!(
                    ServiceMessage::decode(&b[..cut]),
                    Err(DecodeError::Truncated { .. })
                ));
            }
        }

        /// MixSeed round-trips for arbitrary family lists, and every
        /// proper truncation fails with Truncated — the v4 warm-handoff
        /// message inherits the framing discipline of the rest of the
        /// family.
        #[test]
        fn prop_mix_seed_roundtrip_and_truncation(
            id in any::<u32>(),
            fams in proptest::collection::vec(
                (1u16..4000, 1e-9f64..1.0, 0.01f64..10.0, any::<u64>()),
                0..20,
            ),
            cut_frac in 0.0f64..1.0,
        ) {
            let m = ServiceMessage::MixSeed(WireMixSeed {
                id,
                families: fams
                    .into_iter()
                    .map(|(n, listen_w, sigma, hits)| WireMixFamily {
                        n,
                        listen_w,
                        transmit_w: listen_w * 0.9,
                        sigma,
                        mode: (n % 2) as u8,
                        hits,
                    })
                    .collect(),
            });
            let b = m.encode();
            prop_assert_eq!(b.len(), m.encoded_len());
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(decoded, m);
            prop_assert_eq!(used, b.len());
            let cut = ((b.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }

        /// Single-byte corruption anywhere in a MixSeed frame is a
        /// clean rejection — CRC, type validation, version check, or
        /// (for a count-field flip) a length mismatch.
        #[test]
        fn prop_mix_seed_corruption_detected(
            pos_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let mut b = sample_mix_seed().encode().to_vec();
            let pos = ((b.len() - 1) as f64 * pos_frac) as usize;
            b[pos] ^= flip;
            prop_assert!(ServiceMessage::decode(&b).is_err());
        }

        /// Single-byte corruption anywhere in a Ping/Pong frame is a
        /// clean rejection (CRC, type validation, or version check) —
        /// never a panic, never a silent success.
        #[test]
        fn prop_ping_pong_corruption_detected(
            id in any::<u32>(),
            pos_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let m = ServiceMessage::Ping(WirePing { id });
            let mut b = m.encode().to_vec();
            let pos = ((b.len() - 1) as f64 * pos_frac) as usize;
            b[pos] ^= flip;
            // Flipping the type octet to TYPE_PONG is the one
            // corruption the CRC cannot see *as* corruption only if
            // the CRC also matched — it cannot, since the CRC covers
            // the type octet.
            prop_assert!(ServiceMessage::decode(&b).is_err());
        }

        /// Cross-version interop: any request encoded at v4 decodes on
        /// this build as the same message with `corr = 0`, and every
        /// truncation/single-byte corruption of the v4 frame is still
        /// a clean rejection.
        #[test]
        fn prop_v4_request_interop(
            corr in any::<u32>(),
            id in any::<u32>(),
            budgets in proptest::collection::vec(1e-9f64..1.0, 0..20),
            cut_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let mut m = WirePolicyRequest {
                corr,
                id,
                deadline_us: id ^ corr,
                objective: WireObjective::Groupput,
                sigma: 0.5,
                tolerance: 1e-3,
                listen_w: 1e-3,
                transmit_w: 1e-3,
                budgets_w: budgets,
            };
            let mut b = BytesMut::new();
            ServiceMessage::Request(m.clone()).encode_into_versioned(&mut b, 4);
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(used, b.len());
            m.corr = 0;
            m.deadline_us = 0;
            prop_assert_eq!(decoded, ServiceMessage::Request(m));

            let cut = ((b.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
            let mut corrupt = b.to_vec();
            let pos = ((b.len() - 1) as f64 * cut_frac) as usize;
            corrupt[pos] ^= flip;
            prop_assert!(ServiceMessage::decode(&corrupt).is_err());
        }

        /// Cross-version interop for the other correlated data-plane
        /// frames: responses and errors encoded at v4 decode as the
        /// same message with `corr = 0`, and truncation/single-byte
        /// corruption of the v4 frame is still a clean rejection.
        #[test]
        fn prop_v4_response_and_error_interop(
            corr in any::<u32>(),
            id in any::<u32>(),
            is_error in any::<bool>(),
            cut_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let m = if is_error {
                ServiceMessage::Error(WirePolicyError {
                    corr,
                    id,
                    code: ServiceErrorCode::BadRequest,
                    retry_after_us: 0,
                })
            } else {
                let ServiceMessage::Response(mut r) = sample_response() else {
                    unreachable!()
                };
                r.corr = corr;
                r.id = id;
                ServiceMessage::Response(r)
            };
            let mut b = BytesMut::new();
            m.encode_into_versioned(&mut b, 4);
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(used, b.len());
            let expected = match m {
                ServiceMessage::Error(mut e) => {
                    e.corr = 0;
                    ServiceMessage::Error(e)
                }
                ServiceMessage::Response(mut r) => {
                    r.corr = 0;
                    ServiceMessage::Response(r)
                }
                _ => unreachable!(),
            };
            prop_assert_eq!(decoded, expected);

            let cut = ((b.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
            let mut corrupt = b.to_vec();
            let pos = ((corrupt.len() - 1) as f64 * cut_frac) as usize;
            corrupt[pos] ^= flip;
            prop_assert!(ServiceMessage::decode(&corrupt).is_err());
        }

        /// A concatenated stream interleaving v4 and v5 frames decodes
        /// through the codec with every correlation id preserved (v5)
        /// or zeroed (v4), in stream order — and cutting the stream at
        /// any byte boundary still yields exactly the complete frames
        /// before the cut (the codec never mis-frames across a
        /// version change mid-stream).
        #[test]
        fn prop_mixed_version_stream_decode(
            frames in proptest::collection::vec(
                (any::<u32>(), any::<u32>(), any::<bool>(), 0usize..6),
                1..12,
            ),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut stream = BytesMut::new();
            let mut boundaries = vec![0usize];
            let mut expected = Vec::new();
            for &(corr, id, v5, n) in &frames {
                let m = ServiceMessage::Request(WirePolicyRequest {
                    corr,
                    id,
                    deadline_us: 0,
                    objective: WireObjective::Anyput,
                    sigma: 0.5,
                    tolerance: 1e-3,
                    listen_w: 1e-3,
                    transmit_w: 1e-3,
                    budgets_w: vec![1e-3; n],
                });
                ServiceCodec::encode_versioned(&m, &mut stream, if v5 { 5 } else { 4 });
                boundaries.push(stream.len());
                expected.push((if v5 { corr } else { 0 }, id));
            }
            let mut codec = ServiceCodec::new();
            codec.feed(&stream);
            let mut got = Vec::new();
            while let Ok(Some(ServiceMessage::Request(r))) = codec.next_message() {
                got.push((r.corr, r.id));
            }
            prop_assert_eq!(&got, &expected);

            // Any cut point: every frame wholly before the cut decodes,
            // nothing after it does.
            let cut = (stream.len() as f64 * cut_frac) as usize;
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            let mut codec = ServiceCodec::new();
            codec.feed(&stream[..cut]);
            let mut got = 0usize;
            while let Ok(Some(_)) = codec.next_message() {
                got += 1;
            }
            prop_assert_eq!(got, whole);
        }

        /// Every Overloaded reply is well-formed v6 wire: exactly 16
        /// bytes on the 0x1B type, round-trips bit-exactly for any
        /// (corr, id, retry) triple, and every truncation or
        /// single-byte corruption is a clean typed rejection.
        #[test]
        fn prop_overloaded_well_formed(
            corr in any::<u32>(),
            id in any::<u32>(),
            retry_after_us in any::<u32>(),
            cut_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let m = ServiceMessage::Error(WirePolicyError {
                corr,
                id,
                code: ServiceErrorCode::Overloaded,
                retry_after_us,
            });
            let b = m.encode();
            prop_assert_eq!(b.len(), m.encoded_len());
            prop_assert_eq!(b.len(), 16);
            prop_assert_eq!(b[0], 0x1B);
            prop_assert_eq!(b[1], WIRE_VERSION);
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(decoded, m);
            prop_assert_eq!(used, b.len());
            for cut in 0..b.len() {
                prop_assert!(matches!(
                    ServiceMessage::decode(&b[..cut]),
                    Err(DecodeError::Truncated { .. })
                ));
            }
            let mut corrupt = b.to_vec();
            let pos = ((b.len() - 1) as f64 * cut_frac) as usize;
            corrupt[pos] ^= flip;
            prop_assert!(ServiceMessage::decode(&corrupt).is_err());
        }

        /// Deadline interop: a v6 request round-trips its deadline
        /// bit-exactly, while v4/v5 encodings of the same request keep
        /// their historical layouts (no deadline octets anywhere) and
        /// decode with `deadline_us = 0`.
        #[test]
        fn prop_deadline_version_interop(
            corr in any::<u32>(),
            id in any::<u32>(),
            deadline_us in 1u32..u32::MAX,
            n in 0usize..12,
        ) {
            let m = WirePolicyRequest {
                corr,
                id,
                deadline_us,
                objective: WireObjective::Groupput,
                sigma: 0.5,
                tolerance: 1e-3,
                listen_w: 1e-3,
                transmit_w: 1e-3,
                budgets_w: vec![1e-3; n],
            };
            let b6 = ServiceMessage::Request(m.clone()).encode();
            prop_assert_eq!(b6.len(), 49 + 8 * n + 2);
            let (d6, _) = ServiceMessage::decode(&b6).unwrap();
            prop_assert_eq!(d6, ServiceMessage::Request(m.clone()));

            for (version, fixed) in [(5u8, 45usize), (4u8, 41usize)] {
                let mut b = BytesMut::new();
                ServiceMessage::Request(m.clone()).encode_into_versioned(&mut b, version);
                prop_assert_eq!(b.len(), fixed + 8 * n + 2);
                let (decoded, _) = ServiceMessage::decode(&b).unwrap();
                let mut expect = m.clone();
                expect.deadline_us = 0;
                if version < 5 {
                    expect.corr = 0;
                }
                prop_assert_eq!(decoded, ServiceMessage::Request(expect));
            }
        }

        /// Metrics-snapshot wire round-trip is lossless: arbitrary
        /// counters, kind-tagged gauges, and strictly-ascending sparse
        /// histograms come back bit-exact, and every proper truncation
        /// fails with Truncated — the v7 scrape pair inherits the
        /// framing discipline of the rest of the family.
        #[test]
        fn prop_metrics_snapshot_roundtrip(
            id in any::<u32>(),
            counters in proptest::collection::vec(any::<u64>(), 0..48),
            gauges in proptest::collection::vec((0u8..=1, any::<u64>()), 0..16),
            gaps in proptest::collection::vec((1u16..400, any::<u64>()), 0..50),
            cut_frac in 0.0f64..1.0,
        ) {
            // Strictly-positive gaps prefix-sum into strictly-
            // ascending bucket indices.
            let mut idx = 0u32;
            let mut buckets: Vec<(u16, u64)> = Vec::new();
            for (gap, count) in gaps {
                idx += u32::from(gap);
                if idx > u32::from(u16::MAX) {
                    break;
                }
                buckets.push((idx as u16, count));
            }
            let m = ServiceMessage::MetricsResponse(WireMetricsResponse {
                id,
                snapshot: WireMetricsSnapshot {
                    counters,
                    gauges,
                    hists: vec![buckets, vec![]],
                },
            });
            let b = m.encode();
            prop_assert_eq!(b.len(), m.encoded_len());
            let (decoded, used) = ServiceMessage::decode(&b).unwrap();
            prop_assert_eq!(decoded, m);
            prop_assert_eq!(used, b.len());
            let cut = ((b.len() - 1) as f64 * cut_frac) as usize;
            prop_assert!(matches!(
                ServiceMessage::decode(&b[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }

        /// Single-byte corruption anywhere in a metrics frame is a
        /// clean typed rejection — CRC, version window, cap check, or
        /// bucket-order discipline; never a panic, never a silent
        /// success.
        #[test]
        fn prop_metrics_corruption_detected(
            pos_frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let mut b = sample_metrics_response().encode().to_vec();
            let pos = ((b.len() - 1) as f64 * pos_frac) as usize;
            b[pos] ^= flip;
            prop_assert!(ServiceMessage::decode(&b).is_err());
        }
    }
}
