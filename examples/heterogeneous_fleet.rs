//! A heterogeneous fleet: the Table II scenario, end to end.
//!
//! Four tags share a shelf; all draw 1 mW awake but their light
//! exposure differs wildly (5 µW to 100 µW harvested). The oracle
//! would have the richest tag do most of the talking — and EconCast
//! discovers the same split *without any node knowing the others'
//! budgets*. We print the oracle schedule, the (P4) prediction, and
//! what the distributed protocol actually did in simulation.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use econcast::core::{NodeParams, ProtocolConfig, ThroughputMode};
use econcast::oracle::oracle_groupput;
use econcast::sim::config::ScheduleSpec;
use econcast::sim::{SimConfig, Simulator};
use econcast::statespace::{solve_p4, P4Options};

fn main() {
    let budgets_uw = [5.0, 10.0, 50.0, 100.0];
    let nodes: Vec<NodeParams> = budgets_uw
        .iter()
        .map(|&b| NodeParams::from_microwatts(b, 1000.0, 1000.0))
        .collect();
    let sigma = 0.25;

    let oracle = oracle_groupput(&nodes);
    let p4 = solve_p4(
        &nodes,
        sigma,
        ThroughputMode::Groupput,
        P4Options::default(),
    );

    let mut cfg = SimConfig::ideal_clique(
        4,
        nodes[0],
        ProtocolConfig::capture_groupput(sigma),
        6_000_000.0,
        11,
    );
    cfg.nodes = nodes.clone();
    cfg.schedule = ScheduleSpec::Normalized {
        step: 0.05,
        tau: 200.0,
    };
    // Cold start: every node begins ignorant with η = 0 and adapts from
    // its own battery drift alone.
    cfg.eta0 = 0.0;
    cfg.warmup = 2_000_000.0;
    let report = Simulator::new(cfg).expect("valid config").run();

    println!("four tags, L = X = 1 mW, budgets 5/10/50/100 µW, σ = {sigma}\n");
    println!("node  ρ(µW)   oracle awake%  P4 awake%  sim awake%  sim power/ρ");
    for i in 0..4 {
        let sim_awake = 100.0 * report.nodes[i].awake_fraction(report.elapsed);
        let sim_power = report.nodes[i].average_power(report.elapsed) / nodes[i].budget_w;
        println!(
            "{i:>4}  {:>5.0}   {:>12.2}  {:>9.2}  {:>10.2}  {:>11.3}",
            budgets_uw[i],
            100.0 * oracle.awake_fraction(i),
            100.0 * (p4.alpha[i] + p4.beta[i]),
            sim_awake,
            sim_power,
        );
    }
    println!(
        "\ngroupput: oracle {:.5} | achievable T^σ {:.5} | simulated {:.5} ({:.0}% of T^σ)",
        oracle.throughput,
        p4.throughput,
        report.groupput,
        100.0 * report.groupput / p4.throughput
    );
    println!(
        "no node was told N, the others' budgets, or even its own budget —\n\
         the Lagrange multipliers inferred the right division of labor from battery drift."
    );
}
