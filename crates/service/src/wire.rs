//! The wire front-end: a [`PolicyService`] speaking the
//! `econcast-proto` service messages over a length-prefixed byte
//! stream.

use crate::request::{error_to_wire, PolicyRequest};
use crate::service::PolicyService;
use bytes::BytesMut;
use econcast_proto::service::{
    ServiceCodec, ServiceErrorCode, ServiceMessage, WirePolicyError, WirePong, WireStatsResponse,
    WireWelcome, STATS_SHARD_AGGREGATE,
};
use econcast_proto::DecodeError;

/// A policy server bound to a byte stream: feed it request bytes,
/// poll it for response bytes. One `poll_batch` call serves every
/// fully-received request as a single batch, so clients that pipeline
/// `k` requests before polling get `k`-way batching (and in-batch
/// dedup) for free.
#[derive(Debug, Default)]
pub struct WireServer {
    codec: ServiceCodec,
    service: PolicyService,
    /// Non-request messages received (protocol misuse; dropped).
    ignored: u64,
}

impl WireServer {
    /// Wraps a service.
    pub fn new(service: PolicyService) -> Self {
        WireServer {
            codec: ServiceCodec::new(),
            service,
            ignored: 0,
        }
    }

    /// Read access to the wrapped service (stats, …).
    pub fn service(&self) -> &PolicyService {
        &self.service
    }

    /// Non-request messages dropped so far.
    pub fn ignored_messages(&self) -> u64 {
        self.ignored
    }

    /// Appends received bytes to the reassembly buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.codec.feed(bytes);
    }

    /// Serves every fully-received request as one batch, returning the
    /// encoded length-prefixed responses (in request order, one
    /// response or error message per request, after any handshake or
    /// stats replies). Returns an empty buffer when nothing actionable
    /// is buffered. Decode errors are fatal for the stream, matching
    /// the codec's semantics.
    pub fn poll_batch(&mut self) -> Result<BytesMut, DecodeError> {
        let mut ids = Vec::new();
        let mut requests = Vec::new();
        let mut out = BytesMut::new();
        for msg in self.codec.drain()? {
            match msg {
                ServiceMessage::Request(w) => {
                    ids.push((w.corr, w.id));
                    requests.push(PolicyRequest::from_wire(&w));
                }
                // The in-process server is the single-shard special
                // case of the deployment protocol: answer the
                // handshake and stats probes like the TCP front-end.
                ServiceMessage::Hello(h) => {
                    ServiceCodec::encode(
                        &ServiceMessage::Welcome(WireWelcome {
                            id: h.id,
                            shards: 1,
                            max_batch: u16::MAX,
                        }),
                        &mut out,
                    );
                }
                ServiceMessage::StatsRequest(r) => {
                    let msg = if r.shard == 0 || r.shard == STATS_SHARD_AGGREGATE {
                        ServiceMessage::StatsResponse(WireStatsResponse {
                            id: r.id,
                            shard: r.shard,
                            stats: self.service.stats().to_wire(),
                        })
                    } else {
                        ServiceMessage::Error(WirePolicyError {
                            corr: 0,
                            id: r.id,
                            code: ServiceErrorCode::BadRequest,
                            retry_after_us: 0,
                        })
                    };
                    ServiceCodec::encode(&msg, &mut out);
                }
                ServiceMessage::Ping(p) => {
                    ServiceCodec::encode(&ServiceMessage::Pong(WirePong { id: p.id }), &mut out);
                }
                // The in-process server has no prewarmer to seed;
                // ack a mix handoff as fully ignored.
                ServiceMessage::MixSeed(s) => {
                    ServiceCodec::encode(
                        &ServiceMessage::MixAck(econcast_proto::service::WireMixAck {
                            id: s.id,
                            absorbed: 0,
                            grids_built: 0,
                        }),
                        &mut out,
                    );
                }
                // Metrics scrape (wire v7): the hub snapshot with
                // this service's LRU gauges injected — the
                // single-shard special case of the TCP front-end's
                // scrape path.
                ServiceMessage::MetricsRequest(r) => {
                    let mut snap = econcast_metrics::snapshot();
                    snap.gauges[econcast_metrics::GAUGE_LRU_ENTRIES].1 =
                        self.service.stats().lru_len;
                    snap.gauges[econcast_metrics::GAUGE_LRU_BYTES].1 =
                        self.service.cache_bytes() as u64;
                    ServiceCodec::encode(
                        &ServiceMessage::MetricsResponse(
                            econcast_proto::service::WireMetricsResponse {
                                id: r.id,
                                snapshot: crate::metrics::snapshot_to_wire(&snap),
                            },
                        ),
                        &mut out,
                    );
                }
                ServiceMessage::Response(_)
                | ServiceMessage::Error(_)
                | ServiceMessage::Welcome(_)
                | ServiceMessage::StatsResponse(_)
                | ServiceMessage::Pong(_)
                | ServiceMessage::MixAck(_)
                | ServiceMessage::MetricsResponse(_) => self.ignored += 1,
            }
        }
        if requests.is_empty() {
            return Ok(out);
        }
        let results = self.service.serve_batch(&requests);
        let t0 = econcast_trace::armed_now();
        for (&(corr, id), result) in ids.iter().zip(&results) {
            let mut msg = match result {
                Ok(resp) => ServiceMessage::Response(resp.to_wire(id)),
                Err(e) => ServiceMessage::Error(error_to_wire(e, id)),
            };
            match &mut msg {
                ServiceMessage::Response(r) => r.corr = corr,
                ServiceMessage::Error(e) => e.corr = corr,
                _ => unreachable!(),
            }
            ServiceCodec::encode(&msg, &mut out);
        }
        econcast_trace::complete_from("proto", "frame_encode", t0, &[("msgs", ids.len() as u64)]);
        Ok(out)
    }
}
