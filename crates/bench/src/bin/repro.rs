//! `repro` — regenerates the paper's tables and figures, and runs the
//! performance kernel suite.
//!
//! ```text
//! repro all [--quick] [--threads N]     run every experiment in paper order
//! repro <id> [--quick] [--threads N]    run one experiment (table2, fig2, …)
//! repro list                            list experiment ids
//! repro --bench-json [--quick] [--threads N] [--out DIR]
//!                    [--filter SUBSTRING]
//!                                       run the kernel suite and write
//!                                       BENCH_<git-sha>.json
//! repro --trace-demo [--out DIR]        trace a 2-backend cluster batch
//!                                       (with a forced failover) and
//!                                       write a Perfetto-loadable
//!                                       econcast_demo.trace.json
//! repro --overload-smoke [--quick]      open-loop 2×-capacity run
//!                                       against a small-queue cluster
//!                                       front; exits nonzero if the
//!                                       overload-control promises
//!                                       (no errors, bounded queue,
//!                                       accepted-p99 budget) break
//! repro --metrics-smoke [--out DIR]     scrape a live 2-backend
//!                                       cluster front over wire v7,
//!                                       check the fan-in against per-
//!                                       backend ground truth across a
//!                                       mid-run kill, and dump the
//!                                       flight recorder as Perfetto
//!                                       JSON; exits nonzero on any
//!                                       failed check
//! repro --top --addr HOST:PORT [--interval-ms N] [--frames N]
//!                                       live terminal ops view: one
//!                                       v7 scrape per frame rendered
//!                                       as windowed rates, ladder
//!                                       occupancy, latency
//!                                       percentiles, and gauges
//! ```
//!
//! Output goes to stdout; pipe it into `EXPERIMENTS.md` blocks or a
//! plotting script as needed. `--quick` trades fidelity for speed
//! (~10× fewer samples / shorter simulations). `--threads N` pins the
//! worker pool used by the parallel experiment drivers and the
//! summary kernels (default: `ECONCAST_THREADS` or all hardware
//! threads). `--filter SUBSTRING` runs only the bench entries whose
//! name contains the substring — the perf-iteration loop — and skips
//! the JSON write (a partial suite is not a baseline).

use econcast_bench::experiments::registry;
use econcast_bench::{perf, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };

    if let Some(n) = flag_value(&args, "--threads") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => econcast_parallel::set_threads(Some(n)),
            _ => {
                eprintln!("--threads expects a positive integer, got `{n}`");
                std::process::exit(2);
            }
        }
    }

    if args.iter().any(|a| a == "--trace-demo") {
        let dir = flag_value(&args, "--out").unwrap_or_else(|| ".".to_string());
        let t0 = Instant::now();
        match econcast_bench::trace_demo::run(std::path::Path::new(&dir)) {
            Ok(report) => {
                eprintln!(
                    "[trace demo done in {:.1}s: {} events ({} dropped), wrote {}]",
                    t0.elapsed().as_secs_f64(),
                    report.events,
                    report.dropped,
                    report.path.display()
                );
                eprintln!(
                    "[socket profile: warm batch-256 round trip {:.0} us]",
                    report.socket_batch_us
                );
                for span in &report.socket_profile {
                    eprintln!(
                        "  {:>12}  p50 {:>8.1} us  ({} samples)",
                        span.name, span.p50_us, span.count
                    );
                }
                eprintln!("open https://ui.perfetto.dev and load the file to explore it");
            }
            Err(e) => {
                eprintln!("trace demo failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--overload-smoke") {
        let t0 = Instant::now();
        match econcast_bench::openloop::run_overload_smoke(quick) {
            Ok(report) => {
                let row = &report.row;
                eprintln!(
                    "[overload smoke: capacity {:.0} req/s, 2x offered {:.0} req/s, \
                     goodput {:.0} req/s, shed {:.1}%, degraded {:.1}%, \
                     accepted p99 {:.0} us (budget {:.0} us), queue peak {}/{}]",
                    report.capacity_rps,
                    row.offered_rps,
                    row.goodput_rps,
                    row.shed_rate * 100.0,
                    row.degraded_rate * 100.0,
                    row.accepted_p99_us.unwrap_or(f64::NAN),
                    report.p99_budget_us,
                    report.queue_depth_peak,
                    report.queue_capacity,
                );
                let mut failed = false;
                for (label, ok) in report.checks() {
                    eprintln!("  [{}] {label}", if ok { "PASS" } else { "FAIL" });
                    failed |= !ok;
                }
                eprintln!(
                    "[overload smoke done in {:.1}s]",
                    t0.elapsed().as_secs_f64()
                );
                if failed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("overload smoke failed to run: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--metrics-smoke") {
        let dir = flag_value(&args, "--out").unwrap_or_else(|| ".".to_string());
        let t0 = Instant::now();
        match econcast_bench::metrics_smoke::run(std::path::Path::new(&dir)) {
            Ok(outcome) => {
                let mut failed = false;
                for (label, ok) in &outcome.checks {
                    eprintln!("  [{}] {label}", if *ok { "PASS" } else { "FAIL" });
                    failed |= !ok;
                }
                eprintln!(
                    "[metrics smoke done in {:.1}s, flight recorder at {}]",
                    t0.elapsed().as_secs_f64(),
                    outcome.artifact.display()
                );
                if failed {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("metrics smoke failed to run: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|a| a == "--top") {
        let Some(addr) = flag_value(&args, "--addr") else {
            eprintln!("--top requires --addr HOST:PORT (a live policy service or cluster front)");
            std::process::exit(2);
        };
        let addr: std::net::SocketAddr = match addr.parse() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("--addr expects HOST:PORT, got `{addr}`: {e}");
                std::process::exit(2);
            }
        };
        let interval_ms = match flag_value(&args, "--interval-ms") {
            None => 1000,
            Some(v) => match v.parse::<u64>() {
                Ok(ms) if ms > 0 => ms,
                _ => {
                    eprintln!("--interval-ms expects a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            },
        };
        let frames = match flag_value(&args, "--frames") {
            None => 0,
            Some(v) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--frames expects an integer, got `{v}`");
                    std::process::exit(2);
                }
            },
        };
        let cfg = econcast_bench::top::TopConfig {
            addr,
            interval: std::time::Duration::from_millis(interval_ms),
            frames,
            // Clear between frames only on a real terminal; piped
            // output stays an appendable log.
            clear: std::io::IsTerminal::is_terminal(&std::io::stdout()),
        };
        if let Err(e) = econcast_bench::top::run(&cfg, &mut std::io::stdout()) {
            eprintln!("top failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    if args.iter().any(|a| a == "--bench-json") {
        let dir = flag_value(&args, "--out").unwrap_or_else(|| ".".to_string());
        let filter = flag_value(&args, "--filter");
        let t0 = Instant::now();
        match perf::run_and_write(std::path::Path::new(&dir), quick, filter.as_deref()) {
            Ok(Some(path)) => {
                eprintln!(
                    "[bench suite done in {:.1}s, wrote {}]",
                    t0.elapsed().as_secs_f64(),
                    path.display()
                );
            }
            Ok(None) => {
                eprintln!(
                    "[filtered bench run done in {:.1}s; no JSON written]",
                    t0.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("failed to write bench json: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let target = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find(|a| !is_flag_argument(&args, a))
        .cloned();

    let reg = registry();
    match target.as_deref() {
        None | Some("help") => {
            eprintln!("usage: repro <all|list|EXPERIMENT> [--quick] [--threads N]");
            eprintln!(
                "       repro --bench-json [--quick] [--threads N] [--out DIR] \
                 [--filter SUBSTRING]"
            );
            eprintln!("       repro --trace-demo [--out DIR]");
            eprintln!("       repro --overload-smoke [--quick]");
            eprintln!("       repro --metrics-smoke [--out DIR]");
            eprintln!("       repro --top --addr HOST:PORT [--interval-ms N] [--frames N]");
            eprintln!("experiments:");
            for (id, desc, _) in &reg {
                eprintln!("  {id:<8} {desc}");
            }
            std::process::exit(2);
        }
        Some("list") => {
            for (id, desc, _) in &reg {
                println!("{id:<8} {desc}");
            }
        }
        Some("all") => {
            for (id, desc, runner) in &reg {
                banner(id, desc);
                let t0 = Instant::now();
                print!("{}", runner(scale));
                eprintln!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
        }
        Some(id) => match reg.iter().find(|(rid, _, _)| *rid == id) {
            Some((id, desc, runner)) => {
                banner(id, desc);
                let t0 = Instant::now();
                print!("{}", runner(scale));
                eprintln!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{id}`; try `repro list`");
                std::process::exit(2);
            }
        },
    }
}

/// The value following a `--flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether `arg` is the value of a preceding value-taking flag (so it
/// is not mistaken for the experiment id).
fn is_flag_argument(args: &[String], arg: &str) -> bool {
    args.iter().enumerate().any(|(i, a)| {
        (a == "--threads"
            || a == "--out"
            || a == "--filter"
            || a == "--addr"
            || a == "--interval-ms"
            || a == "--frames")
            && args.get(i + 1).map(String::as_str) == Some(arg)
    })
}

fn banner(id: &str, desc: &str) {
    println!("\n{}", "=".repeat(72));
    println!("== {id}: {desc}");
    println!("{}", "=".repeat(72));
}
