//! Trace-writer contract tests — the CI `trace-smoke` job runs this
//! file. The tracer's Chrome JSON must parse with the same
//! hand-rolled parser the bench gate uses, escaping must round-trip
//! arbitrary strings, B/E spans must nest per thread, span structure
//! must be solver-worker-count-invariant, and the demo trace must
//! contain the full request lifecycle.

use econcast_bench::gate::{parse_json, Json};
use econcast_core::ThroughputMode;
use econcast_service::{PolicyRequest, PolicyService, ServiceConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// The tracer is process-global; every test that arms it holds this
/// lock and starts from a clean slate.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    let guard = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    econcast_trace::set_spans(false);
    econcast_trace::set_histograms(false);
    econcast_trace::reset();
    econcast_trace::clear_histograms();
    guard
}

/// Every event name in a parsed Chrome trace document.
fn event_names(doc: &Json) -> BTreeSet<String> {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .into_iter()
        .flatten()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .map(str::to_string)
        .collect()
}

#[test]
fn trace_demo_emits_parseable_lifecycle_trace() {
    let _g = serial();
    let dir = std::env::temp_dir().join("econcast_trace_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let report = econcast_bench::trace_demo::run(&dir).expect("trace demo run");
    assert_eq!(report.dropped, 0, "demo outgrew the per-thread rings");

    let doc = parse_json(&report.json).expect("demo trace parses with the gate parser");
    let names = event_names(&doc);
    // The full request lifecycle plus the cluster fault path.
    for want in [
        "frame_decode",
        "route",
        "serve_batch",
        "probe",
        "publish",
        "frame_encode",
        "cluster_serve",
        "remote_serve",
        "dial",
        "backend_failure",
        "failover_reserve",
        "healer_sweep",
    ] {
        assert!(
            names.contains(want),
            "demo trace missing `{want}`; has {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("solve_")),
        "no kernel solve spans: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("tier_")),
        "no tier markers: {names:?}"
    );
    std::fs::remove_file(&report.path).ok();
}

/// A batch whose requests all miss the caches: distinct heterogeneous
/// instances, alternating objectives — every request runs the full
/// probe/solve/publish lifecycle.
fn lifecycle_batch() -> Vec<PolicyRequest> {
    (0..12)
        .map(|i| PolicyRequest {
            budgets_w: (0..4)
                .map(|k| (10.0 + i as f64 + 3.0 * k as f64) * 1e-6)
                .collect(),
            listen_w: 500e-6,
            transmit_w: 450e-6,
            sigma: 0.5,
            objective: if i % 2 == 0 {
                ThroughputMode::Groupput
            } else {
                ThroughputMode::Anyput
            },
            tolerance: 1e-3,
        })
        .collect()
}

/// Span structure — nesting, names, counts — must be identical no
/// matter how many solver workers serve the batch: solves are
/// complete events, not B/E pairs, precisely so worker threads can't
/// change the shape of the trace.
#[test]
fn span_structure_is_worker_count_invariant() {
    let _g = serial();
    let batch = lifecycle_batch();
    let mut signatures = Vec::new();
    for workers in [1usize, 2, 4] {
        econcast_trace::reset();
        econcast_trace::set_spans(true);
        let mut svc = PolicyService::new(ServiceConfig {
            workers: Some(workers),
            ..ServiceConfig::default()
        });
        svc.serve_batch(&batch);
        econcast_trace::set_spans(false);
        let snap = econcast_trace::drain();
        econcast_trace::check_nesting(&snap).expect("well-nested spans");
        signatures.push((workers, econcast_trace::structure_signature(&snap)));
    }
    let (_, first) = &signatures[0];
    assert!(
        first.keys().any(|k| k.contains("solve_")),
        "signature saw no solves: {first:?}"
    );
    for (workers, sig) in &signatures[1..] {
        assert_eq!(sig, first, "span structure diverged at workers={workers}");
    }
}

proptest! {
    /// `escape_json_string` output, wrapped in quotes, parses back to
    /// the original string through the gate's JSON parser — controls,
    /// quotes, backslashes, and astral-plane characters included.
    #[test]
    fn escaping_roundtrips_through_gate_parser(
        points in proptest::collection::vec(0u32..0x11_0000, 0usize..48),
    ) {
        let s: String = points.iter().filter_map(|&p| char::from_u32(p)).collect();
        let quoted = format!("\"{}\"", econcast_trace::escape_json_string(&s));
        match parse_json(&quoted) {
            Ok(Json::Str(back)) => prop_assert_eq!(back, s),
            other => prop_assert!(false, "parse of {quoted:?} failed: {other:?}"),
        }
    }

    /// Random span trees drain to well-nested B/E sequences whose
    /// Chrome JSON parses with the gate parser.
    #[test]
    fn random_span_trees_nest_and_parse(
        depths in proptest::collection::vec(1usize..6, 1usize..10),
    ) {
        const LEVEL: [&str; 6] = ["d0", "d1", "d2", "d3", "d4", "d5"];
        let _g = serial();
        econcast_trace::set_spans(true);
        for &depth in &depths {
            let mut guards = Vec::new();
            for level in 0..depth {
                guards.push(econcast_trace::SpanGuard::begin(
                    "test",
                    LEVEL[level],
                    &[("level", level as u64)],
                ));
            }
            econcast_trace::instant("test", "leaf", &[]);
            // Innermost first — Vec::pop drops in reverse push order.
            while guards.pop().is_some() {}
        }
        econcast_trace::set_spans(false);
        let snap = econcast_trace::drain();
        econcast_trace::check_nesting(&snap).map_err(TestCaseError::fail)?;
        let json = econcast_trace::to_chrome_json(&snap);
        let doc = parse_json(&json).map_err(TestCaseError::fail)?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len)
            .unwrap_or(0);
        // A B and an E per span, an instant per tree, plus thread
        // metadata.
        let spans: usize = depths.iter().sum();
        prop_assert!(events >= 2 * spans + depths.len());
    }
}
